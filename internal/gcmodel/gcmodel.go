// Package gcmodel defines the cost primitives and the Collector contract
// shared by the six HotSpot collectors the paper studies.
//
// A collector in this laboratory is a pricing-and-policy object: given a
// snapshot of heap demographics it prices each collection phase in
// simulated seconds (using the machine model's bandwidth and scalability
// curves) and dictates generation-sizing policy (survivor sizing,
// tenuring, concurrent-cycle triggers). The JVM simulator owns state
// evolution; collectors decide how long the world stops and why.
//
// Work is expressed in "traversal bytes": one byte of traversal costs
// 1/LocalBandwidth seconds on one thread against local memory. The
// factors below convert collected volumes into traversal bytes — e.g.
// copying a surviving byte costs more than marking it, and promoting a
// byte into CMS's free-list old generation costs several times more than
// bump-pointer promotion. That last asymmetry is the mechanism behind the
// paper's Table 3 anomaly.
package gcmodel

import (
	"jvmgc/internal/heapmodel"
	"jvmgc/internal/machine"
	"jvmgc/internal/simtime"
	"jvmgc/internal/xrand"
)

// Costs converts collected byte volumes into traversal work. All factors
// are dimensionless (traversal bytes per byte of volume).
type Costs struct {
	Copy            float64 // young survivor copied to survivor space
	PromoteBump     float64 // byte promoted via bump pointer (Serial, Parallel*)
	PromoteFreeList float64 // byte promoted into free lists (ParNew/CMS)
	Mark            float64 // live byte traced
	Compact         float64 // live byte slid during compaction
	Sweep           float64 // heap byte swept (free-list rebuild, cheap)
	CardScan        float64 // dirty old-generation byte scanned at minor GC
	RemSetWork      float64 // G1 remembered-set byte updated/scanned

	// DirtyCardFrac is the fraction of the old generation whose cards are
	// dirty at a typical minor collection.
	DirtyCardFrac float64

	// FullParallelFrac is the fraction of a parallel full compaction that
	// actually parallelizes (summary/forwarding phases serialize; Amdahl
	// caps the rest). It is why ParallelOld full GCs of a 64 GB heap
	// still take minutes.
	FullParallelFrac float64

	// OldPressureKnee and OldPressureMax shape the promotion slow-down as
	// the old generation approaches full: beyond the knee occupancy,
	// per-byte promotion cost rises linearly up to ×(1+Max) at 100%.
	OldPressureKnee float64
	OldPressureMax  float64

	// G1FullParallel is an ablation switch: when set, G1's full
	// collection is priced as a parallel compaction (as post-JDK-10 G1
	// does) instead of JDK 8's single-threaded one. The paper's headline
	// Figure 1a/3a results hinge on this being off.
	G1FullParallel bool

	// G1FullHeapFactor prices the heap-capacity-proportional part of a
	// JDK 8 G1 full collection (clearing marks, rebuilding remembered
	// sets and region metadata over the whole committed heap), in
	// traversal bytes per heap byte.
	G1FullHeapFactor float64

	// PauseJitter is the relative noise applied to every priced pause.
	PauseJitter float64
}

// DefaultCosts returns the calibrated conversion factors.
func DefaultCosts() Costs {
	return Costs{
		Copy:             2.0,
		PromoteBump:      2.6,
		PromoteFreeList:  9.0,
		Mark:             0.9,
		Compact:          2.2,
		Sweep:            0.04,
		CardScan:         1.0,
		RemSetWork:       1.4,
		DirtyCardFrac:    0.02,
		FullParallelFrac: 0.75,
		OldPressureKnee:  0.85,
		OldPressureMax:   50.0,
		G1FullHeapFactor: 0.012,
		PauseJitter:      0.12,
	}
}

// Snapshot carries everything a collector needs to price a collection.
type Snapshot struct {
	Machine   *machine.Machine
	Geo       heapmodel.Geometry
	GCThreads int

	// Minor-collection volumes.
	Survived machine.Bytes // bytes staying in young
	Promoted machine.Bytes // bytes moving to old

	// Full-collection volumes.
	LiveYoung machine.Bytes
	LiveOld   machine.Bytes

	// Occupancy context.
	OldUsed      machine.Bytes
	HeapUsed     machine.Bytes
	OldOccupancy float64 // old used / old capacity in [0,1]

	// MutatorThreads is the number of runnable application threads
	// (drives root-scan volume).
	MutatorThreads int

	Rng *xrand.Rand
}

// PressureMultiplier returns the promotion cost multiplier implied by the
// old-generation occupancy in the snapshot.
func (c Costs) PressureMultiplier(oldOccupancy float64) float64 {
	if oldOccupancy <= c.OldPressureKnee {
		return 1
	}
	span := 1 - c.OldPressureKnee
	if span <= 0 {
		return 1 + c.OldPressureMax
	}
	f := (oldOccupancy - c.OldPressureKnee) / span
	if f > 1 {
		f = 1
	}
	return 1 + c.OldPressureMax*f
}

// RootScanWork estimates traversal bytes for scanning thread stacks and
// globals: ~64 KB per runnable thread plus a 2 MB global base.
func RootScanWork(mutators int) float64 {
	if mutators < 1 {
		mutators = 1
	}
	return float64(2*machine.MB) + float64(mutators)*float64(64*machine.KB)
}

// Jitter applies the configured pause noise and clamps to non-negative.
func (c Costs) Jitter(d simtime.Duration, rng *xrand.Rand) simtime.Duration {
	if rng == nil {
		return d
	}
	out := simtime.Duration(rng.Jitter(float64(d), c.PauseJitter))
	if out < 0 {
		out = 0
	}
	return out
}

// ParallelPause prices `work` traversal bytes executed by the snapshot's
// GC thread gang, plus root scanning, as a stop-the-world pause (without
// TTSP, which the safepoint model adds).
func (c Costs) ParallelPause(s Snapshot, work float64) simtime.Duration {
	secs := s.Machine.ParallelSeconds(work+RootScanWork(s.MutatorThreads), s.GCThreads)
	return c.Jitter(simtime.Seconds(secs), s.Rng)
}

// SerialPause prices `work` traversal bytes on a single thread, spanning
// `span` bytes of address space (for the NUMA interleaving penalty).
func (c Costs) SerialPause(s Snapshot, work float64, span machine.Bytes) simtime.Duration {
	secs := s.Machine.SerialSeconds(work+RootScanWork(s.MutatorThreads), span)
	return c.Jitter(simtime.Seconds(secs), s.Rng)
}

// MixedParallelPause prices a phase of which only parallelFrac
// parallelizes; the remainder runs on one thread spanning `span`.
func (c Costs) MixedParallelPause(s Snapshot, work float64, parallelFrac float64, span machine.Bytes) simtime.Duration {
	if parallelFrac < 0 {
		parallelFrac = 0
	}
	if parallelFrac > 1 {
		parallelFrac = 1
	}
	par := s.Machine.ParallelSeconds(work*parallelFrac+RootScanWork(s.MutatorThreads), s.GCThreads)
	ser := s.Machine.SerialSeconds(work*(1-parallelFrac), span)
	return c.Jitter(simtime.Seconds(par+ser), s.Rng)
}

// MinorWork converts minor-collection volumes into traversal bytes, using
// the given promotion factor and the old-pressure multiplier, and adds
// dirty-card scanning over the old generation.
func (c Costs) MinorWork(s Snapshot, promoteFactor float64) float64 {
	pressure := c.PressureMultiplier(s.OldOccupancy)
	work := float64(s.Survived)*c.Copy +
		float64(s.Promoted)*promoteFactor*pressure +
		float64(s.OldUsed)*c.DirtyCardFrac*c.CardScan
	return work
}

// FullWork converts full-collection volumes into traversal bytes for a
// mark-compact collection.
func (c Costs) FullWork(s Snapshot) float64 {
	live := float64(s.LiveYoung + s.LiveOld)
	return live*c.Mark + live*c.Compact
}

// SurvivorPolicy describes how a collector sizes survivor spaces.
type SurvivorPolicy int

const (
	// FixedSurvivors: survivor spaces are a fixed fraction of young
	// (SurvivorRatio); overflow promotes prematurely. Serial, ParNew and
	// CMS behave this way.
	FixedSurvivors SurvivorPolicy = iota
	// AdaptiveSurvivors: the adaptive size policy grows survivor spaces
	// to fit the surviving cohort (Parallel/ParallelOld ergonomics),
	// avoiding premature promotion.
	AdaptiveSurvivors
)

// ConcurrentKind distinguishes the two concurrent old-generation designs.
type ConcurrentKind int

const (
	// NoConcurrent: the collector has no concurrent machinery.
	NoConcurrent ConcurrentKind = iota
	// CMSStyle: initial-mark pause, concurrent mark, remark pause,
	// concurrent sweep that frees (and fragments) old space.
	CMSStyle
	// G1Style: initial-mark piggybacked on a young pause, concurrent
	// mark, then a sequence of mixed collections that evacuate old
	// regions.
	G1Style
)

// ConcurrentSpec describes a collector's concurrent cycle, if any.
type ConcurrentSpec struct {
	Kind ConcurrentKind
	// InitiatingOccupancy is the old-generation (CMS) or whole-heap (G1)
	// occupancy fraction that starts a cycle.
	InitiatingOccupancy float64
	// Threads is the number of concurrent worker threads (stolen from
	// mutators while a cycle runs).
	Threads int
	// FragmentFrac is the fraction of swept space lost to fragmentation
	// per CMS sweep.
	FragmentFrac float64
	// MixedTarget is the number of mixed collections G1 schedules after a
	// cycle.
	MixedTarget int
}

// Collector is the contract each of the six collectors implements.
type Collector interface {
	// Name returns the HotSpot name, e.g. "ParallelOld".
	Name() string

	// Survivors returns the survivor sizing policy.
	Survivors() SurvivorPolicy

	// TenuringThreshold returns the maximum cohort age before promotion.
	TenuringThreshold() int

	// ParallelYoung reports whether minor collections run on the GC gang
	// (false only for Serial).
	ParallelYoung() bool

	// BarrierFactor is the mutator slow-down from write barriers and
	// allocation-path bookkeeping, >= 1.
	BarrierFactor() float64

	// MinorPause prices a young collection.
	MinorPause(s Snapshot) simtime.Duration

	// FullPause prices a full collection (the collector's own full-GC
	// algorithm: serial or parallel, sweeping or compacting).
	FullPause(s Snapshot) simtime.Duration

	// Concurrent returns the concurrent cycle spec; Kind==NoConcurrent
	// for the stop-the-world-only collectors.
	Concurrent() ConcurrentSpec

	// InitialMarkPause and RemarkPause price the short pauses bracketing
	// a concurrent cycle. They are only called when Concurrent().Kind is
	// not NoConcurrent.
	InitialMarkPause(s Snapshot) simtime.Duration
	RemarkPause(s Snapshot) simtime.Duration

	// ConcurrentMarkSeconds returns the wall-clock duration of concurrent
	// marking for the snapshot's live old volume.
	ConcurrentMarkSeconds(s Snapshot) simtime.Duration

	// MixedPause prices one G1 mixed collection evacuating `reclaim`
	// bytes of old regions on top of a young collection.
	MixedPause(s Snapshot, reclaim machine.Bytes) simtime.Duration
}

// PauseTargeted is implemented by collectors that size the young
// generation adaptively toward a pause-time goal (G1). The JVM simulator
// type-asserts for it and, when the young size was not pinned explicitly,
// resizes eden between collections to chase the target.
type PauseTargeted interface {
	// PauseTarget returns the pause-time goal.
	PauseTarget() simtime.Duration
	// YoungBounds returns the ergonomic young-generation bounds as
	// fractions of the heap.
	YoungBounds() (minFrac, maxFrac float64)
}
