package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{512, "512B"},
		{2 * KB, "2KB"},
		{3 * MB, "3MB"},
		{64 * GB, "64GB"},
		{1536 * KB, "1.5MB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestPaperTestbedShape(t *testing.T) {
	topo := PaperTestbed()
	if topo.Cores() != 48 {
		t.Errorf("Cores = %d, want 48", topo.Cores())
	}
	if topo.Nodes() != 8 {
		t.Errorf("Nodes = %d, want 8", topo.Nodes())
	}
	if topo.RAM != 64*GB {
		t.Errorf("RAM = %v", topo.RAM)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestClientTestbedShape(t *testing.T) {
	topo := ClientTestbed()
	if topo.Cores() != 16 {
		t.Errorf("Cores = %d, want 16", topo.Cores())
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	bad := []Topology{
		{Sockets: 0, NodesPerSocket: 1, CoresPerNode: 1, RAM: GB},
		{Sockets: 1, NodesPerSocket: 0, CoresPerNode: 1, RAM: GB},
		{Sockets: 1, NodesPerSocket: 1, CoresPerNode: 0, RAM: GB},
		{Sockets: 1, NodesPerSocket: 1, CoresPerNode: 1, RAM: 0},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid topology", i)
		}
	}
}

func TestNewPanicsOnInvalidTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Topology{})
}

func TestSpeedupBasics(t *testing.T) {
	m := New(PaperTestbed())
	if s := m.Speedup(1); s != 1 {
		t.Errorf("Speedup(1) = %v", s)
	}
	if s := m.Speedup(0); s != 1 {
		t.Errorf("Speedup(0) = %v", s)
	}
	// Within one NUMA node scaling should be strong.
	if s := m.Speedup(6); s < 4 {
		t.Errorf("Speedup(6) = %v, want >= 4 within a node", s)
	}
	// Requests beyond the core count are clamped.
	if m.Speedup(48) != m.Speedup(1000) {
		t.Error("Speedup not clamped at core count")
	}
}

func TestSpeedupMonotoneNondecreasingThenSaturating(t *testing.T) {
	m := New(PaperTestbed())
	prev := 0.0
	for n := 1; n <= 48; n++ {
		s := m.Speedup(n)
		if s <= 0 {
			t.Fatalf("Speedup(%d) = %v", n, s)
		}
		// Allow mild local dips at NUMA-node boundaries but never a
		// collapse below 85% of the running maximum.
		if s < 0.85*prev {
			t.Errorf("Speedup(%d) = %v collapsed from %v", n, s, prev)
		}
		if s > prev {
			prev = s
		}
	}
}

func TestSpeedupDoesNotScaleAcrossNodes(t *testing.T) {
	// The headline scalability result (Gidra et al.): 48 threads must be
	// far from 48x. Expect between 6x and 20x.
	m := New(PaperTestbed())
	s := m.Speedup(48)
	if s < 6 || s > 20 {
		t.Errorf("Speedup(48) = %v, want in [6, 20]", s)
	}
	// And 48 threads must still beat 6 (one node).
	if s <= m.Speedup(6) {
		t.Errorf("Speedup(48)=%v <= Speedup(6)=%v", s, m.Speedup(6))
	}
}

func TestEfficiencyDecreases(t *testing.T) {
	m := New(PaperTestbed())
	if e1, e48 := m.Efficiency(1), m.Efficiency(48); e48 >= e1 {
		t.Errorf("Efficiency(48)=%v >= Efficiency(1)=%v", e48, e1)
	}
}

func TestParallelSecondsScalesWithWork(t *testing.T) {
	m := New(PaperTestbed())
	small := m.ParallelSeconds(1e6, 16)
	big := m.ParallelSeconds(1e9, 16)
	if big <= small {
		t.Errorf("ParallelSeconds not increasing in work: %v vs %v", small, big)
	}
	if m.ParallelSeconds(-5, 16) > m.Cost.SpinUp*16+1e-12 {
		t.Error("negative work not clamped")
	}
}

func TestParallelBeatsSerialOnLargeWork(t *testing.T) {
	m := New(PaperTestbed())
	work := float64(4 * GB)
	par := m.ParallelSeconds(work, 32)
	ser := m.SerialSeconds(work, 8*GB)
	if par >= ser {
		t.Errorf("parallel %vs >= serial %vs on 4GB", par, ser)
	}
}

func TestSerialWinsOnTinyWork(t *testing.T) {
	// The spin-up tax must make serial collection competitive on tiny live
	// sets — this is why ParNew/Serial win experiments in Figure 3a.
	m := New(PaperTestbed())
	work := float64(256 * KB)
	par := m.ParallelSeconds(work, 48)
	ser := m.SerialSeconds(work, 64*MB)
	if ser >= par {
		t.Errorf("serial %vs >= parallel %vs on 256KB", ser, par)
	}
}

func TestSerialSecondsRemotePenaltyGrowsWithSpan(t *testing.T) {
	m := New(PaperTestbed())
	work := float64(GB)
	local := m.SerialSeconds(work, 4*GB)   // fits one node's share
	spread := m.SerialSeconds(work, 64*GB) // spans all 8 nodes
	if spread <= local {
		t.Errorf("spanning heap not slower: %v vs %v", spread, local)
	}
	if spread > 4*local {
		t.Errorf("remote penalty implausibly large: %v vs %v", spread, local)
	}
}

func TestFullHeapSerialCompactTakesMinutes(t *testing.T) {
	// Sanity-check the headline magnitude: a serial traversal of ~60GB of
	// live data on the 64GB box must take on the order of minutes
	// (the paper measured a 4-minute ParallelOld full GC; serial is the
	// worst case bound).
	m := New(PaperTestbed())
	s := m.SerialSeconds(float64(60*GB), 64*GB)
	if s < 60 || s > 1200 {
		t.Errorf("serial 60GB traversal = %vs, want minutes", s)
	}
}

func TestDefaultGCThreads(t *testing.T) {
	m := New(PaperTestbed())
	// HotSpot: 8 + (48-8)*5/8 = 33.
	if got := m.DefaultGCThreads(); got != 33 {
		t.Errorf("DefaultGCThreads = %d, want 33", got)
	}
	if got := m.DefaultConcGCThreads(); got != 9 {
		t.Errorf("DefaultConcGCThreads = %d, want 9", got)
	}
	small := New(Topology{Sockets: 1, NodesPerSocket: 1, CoresPerNode: 4, RAM: GB})
	if got := small.DefaultGCThreads(); got != 4 {
		t.Errorf("small DefaultGCThreads = %d, want 4", got)
	}
}

func TestQuickSpeedupPositiveAndBounded(t *testing.T) {
	m := New(PaperTestbed())
	f := func(n uint8) bool {
		s := m.Speedup(int(n))
		return s >= 0.999 && s <= float64(m.Topo.Cores()) && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParallelSecondsMonotoneInWork(t *testing.T) {
	m := New(PaperTestbed())
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return m.ParallelSeconds(x, 16) <= m.ParallelSeconds(y, 16)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPresetTopologiesValid(t *testing.T) {
	for _, tc := range []struct {
		name  string
		topo  Topology
		cores int
		nodes int
	}{
		{"TwoSocketServer", TwoSocketServer(), 32, 2},
		{"Laptop", Laptop(), 8, 1},
	} {
		if err := tc.topo.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if tc.topo.Cores() != tc.cores || tc.topo.Nodes() != tc.nodes {
			t.Errorf("%s: %d cores / %d nodes", tc.name, tc.topo.Cores(), tc.topo.Nodes())
		}
	}
}

func TestSingleNodeMachinesScaleBetterPerThread(t *testing.T) {
	// A single-NUMA-node laptop pays no remote penalty, so its 8-thread
	// efficiency beats the 8-node server's 48-thread efficiency.
	laptop := New(Laptop())
	server := New(PaperTestbed())
	if laptop.Efficiency(8) <= server.Efficiency(48) {
		t.Errorf("laptop eff(8)=%.2f <= server eff(48)=%.2f",
			laptop.Efficiency(8), server.Efficiency(48))
	}
	// And the laptop's speedup at its core count is near-linear.
	if s := laptop.Speedup(8); s < 6 {
		t.Errorf("laptop Speedup(8) = %.2f, want near-linear", s)
	}
}
