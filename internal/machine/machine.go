// Package machine models the multicore NUMA server the paper's experiments
// ran on, and prices parallel garbage-collection work on it.
//
// The paper's testbed is a 48-core, 4-socket machine with 2 NUMA nodes per
// socket and 6 cores per node, 64 GB of RAM, per-core L1/L2 caches and a
// per-node L3. The findings the study leans on — GC phases that stop
// scaling beyond a node, remote-scan and remote-copy penalties, and
// minutes-long full collections of a nearly full 64 GB heap — are all
// functions of this topology, so the model carries it explicitly.
//
// Pricing follows the mechanism Gidra et al. identify (the paper's refs
// [12, 13]): parallel GC phases suffer a per-thread synchronization tax
// and, once worker threads span NUMA nodes, a growing fraction of remote
// accesses whose bandwidth is a fraction of local bandwidth. The resulting
// speedup curve rises steeply inside one node and flattens hard across
// nodes, matching the observation that HotSpot's collectors "do not scale
// with the number of cores".
package machine

import (
	"errors"
	"fmt"
)

// Bytes is a memory quantity in bytes.
type Bytes int64

// Common sizes.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// String formats the quantity with a binary unit.
func (b Bytes) String() string {
	switch {
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.4gGB", float64(b)/float64(GB))
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.4gMB", float64(b)/float64(MB))
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.4gKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Topology describes the processor and memory layout of a machine.
type Topology struct {
	Sockets        int   // processor packages
	NodesPerSocket int   // NUMA nodes per socket
	CoresPerNode   int   // cores per NUMA node
	RAM            Bytes // total memory
	L1PerCore      Bytes // per-core level-1 cache (data)
	L2PerCore      Bytes // per-core level-2 cache
	L3PerNode      Bytes // per-NUMA-node level-3 cache
}

// Cores returns the total number of hardware threads.
func (t Topology) Cores() int { return t.Sockets * t.NodesPerSocket * t.CoresPerNode }

// Nodes returns the total number of NUMA nodes.
func (t Topology) Nodes() int { return t.Sockets * t.NodesPerSocket }

// Validate reports whether the topology is well-formed.
func (t Topology) Validate() error {
	switch {
	case t.Sockets <= 0:
		return errors.New("machine: topology needs at least one socket")
	case t.NodesPerSocket <= 0:
		return errors.New("machine: topology needs at least one NUMA node per socket")
	case t.CoresPerNode <= 0:
		return errors.New("machine: topology needs at least one core per node")
	case t.RAM <= 0:
		return errors.New("machine: topology needs positive RAM")
	default:
		return nil
	}
}

// PaperTestbed returns the topology of the paper's 48-core server:
// 4 sockets, 2 NUMA nodes per socket, 6 cores per node, 64 GB RAM,
// 1.5 MB L1 and 6 MB L2 per core, 12 MB L3 per node (§3.1).
func PaperTestbed() Topology {
	return Topology{
		Sockets:        4,
		NodesPerSocket: 2,
		CoresPerNode:   6,
		RAM:            64 * GB,
		L1PerCore:      1536 * KB,
		L2PerCore:      6 * MB,
		L3PerNode:      12 * MB,
	}
}

// TwoSocketServer returns a contemporary two-socket, two-NUMA-node
// server: 32 cores, 128 GB RAM. Useful for sensitivity studies against
// the paper's eight-node box.
func TwoSocketServer() Topology {
	return Topology{
		Sockets:        2,
		NodesPerSocket: 1,
		CoresPerNode:   16,
		RAM:            128 * GB,
		L1PerCore:      48 * KB,
		L2PerCore:      1280 * KB,
		L3PerNode:      30 * MB,
	}
}

// Laptop returns a single-node developer machine: 8 cores, 16 GB RAM.
func Laptop() Topology {
	return Topology{
		Sockets:        1,
		NodesPerSocket: 1,
		CoresPerNode:   8,
		RAM:            16 * GB,
		L1PerCore:      64 * KB,
		L2PerCore:      512 * KB,
		L3PerNode:      16 * MB,
	}
}

// ClientTestbed returns the topology of the paper's YCSB client machine:
// 16 cores, 8 GB RAM (§4).
func ClientTestbed() Topology {
	return Topology{
		Sockets:        2,
		NodesPerSocket: 1,
		CoresPerNode:   8,
		RAM:            8 * GB,
		L1PerCore:      64 * KB,
		L2PerCore:      512 * KB,
		L3PerNode:      8 * MB,
	}
}

// CostParams are the tunable constants of the pricing model. The defaults
// are calibrated so that absolute pause magnitudes land in the ranges the
// paper reports (hundreds of milliseconds on DaCapo-size live sets,
// seconds to minutes on the 64 GB Cassandra heap).
type CostParams struct {
	// LocalBandwidth is the per-core streaming bandwidth, in bytes per
	// second, for GC-style pointer-chasing work against local memory.
	// This is far below peak DRAM bandwidth: GC copy/mark loops are
	// latency-bound graph traversals, not memcpy.
	LocalBandwidth float64
	// RemoteFactor is the throughput of remote (cross-node) accesses as a
	// fraction of local accesses (0 < RemoteFactor <= 1).
	RemoteFactor float64
	// SyncTax is the per-extra-thread fractional synchronization overhead
	// in parallel phases (work stealing, termination protocols, shared
	// queue contention).
	SyncTax float64
	// InterleaveRemoteFrac is the fraction of accesses that hit remote
	// memory when the heap is interleaved across n nodes and the worker
	// set spans them: (n-1)/n of pages are remote to any given worker.
	// HotSpot is not NUMA-aware when copying (Gidra et al.), so workers
	// see this full fraction. The constant scales it (1 = full exposure).
	InterleaveRemoteFrac float64
	// SpinUp is the fixed per-thread cost, in seconds, of dispatching a
	// parallel phase (task setup, barrier entry/exit). It is why serial
	// collection wins on tiny live sets.
	SpinUp float64
}

// DefaultCostParams returns the calibrated pricing constants.
func DefaultCostParams() CostParams {
	return CostParams{
		LocalBandwidth:       600e6, // 600 MB/s per core of traversal work
		RemoteFactor:         0.45,
		SyncTax:              0.035,
		InterleaveRemoteFrac: 1.0,
		SpinUp:               40e-6, // 40 µs per worker per phase
	}
}

// Machine combines a topology with pricing parameters.
type Machine struct {
	Topo Topology
	Cost CostParams
}

// New returns a Machine for the given topology with default cost
// parameters. It panics if the topology is invalid, since a bad topology
// is a programming error in experiment setup.
func New(t Topology) *Machine {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return &Machine{Topo: t, Cost: DefaultCostParams()}
}

// nodesSpannedF returns how many NUMA nodes a gang of n threads occupies,
// assuming compact placement (fill a node before spilling to the next).
// The result is fractional so the remote-access penalty ramps smoothly as
// a gang spills into the next node instead of jumping at the boundary.
func (m *Machine) nodesSpannedF(n int) float64 {
	nodes := float64(n) / float64(m.Topo.CoresPerNode)
	if max := float64(m.Topo.Nodes()); nodes > max {
		nodes = max
	}
	if nodes < 1 {
		nodes = 1
	}
	return nodes
}

// Speedup returns the effective speedup of a parallel GC phase using n
// worker threads, relative to one thread on local memory. It is strictly
// positive, equals ~1 at n=1, and saturates as threads span NUMA nodes.
func (m *Machine) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	if c := m.Topo.Cores(); n > c {
		n = c
	}
	nodes := m.nodesSpannedF(n)
	remoteFrac := 0.0
	if nodes > 1 {
		remoteFrac = m.Cost.InterleaveRemoteFrac * (nodes - 1) / nodes
	}
	// Per-thread throughput: a remoteFrac portion of accesses run at
	// RemoteFactor of local speed.
	perThread := 1 / (1 - remoteFrac + remoteFrac/m.Cost.RemoteFactor)
	// Synchronization tax grows with gang size.
	sync := 1 + m.Cost.SyncTax*float64(n-1)
	return float64(n) * perThread / sync
}

// Efficiency returns Speedup(n)/n, the per-thread efficiency of a
// parallel phase.
func (m *Machine) Efficiency(n int) float64 { return m.Speedup(n) / float64(n) }

// NUMARemoteShare returns the fraction of memory accesses a compactly
// placed gang of n threads services from remote NUMA nodes — the share of
// a parallel pause paying the remote penalty (telemetry attributes this
// on GC spans).
func (m *Machine) NUMARemoteShare(n int) float64 {
	if n > m.Topo.Cores() {
		n = m.Topo.Cores()
	}
	nodes := m.nodesSpannedF(n)
	if nodes <= 1 {
		return 0
	}
	return m.Cost.InterleaveRemoteFrac * (nodes - 1) / nodes
}

// ParallelSeconds prices `work` bytes of GC traversal performed by n
// threads, including the phase spin-up cost.
func (m *Machine) ParallelSeconds(work float64, n int) float64 {
	if work < 0 {
		work = 0
	}
	if n < 1 {
		n = 1
	}
	return work/(m.Cost.LocalBandwidth*m.Speedup(n)) + m.Cost.SpinUp*float64(n)
}

// SerialSeconds prices `work` bytes of GC traversal on a single thread.
// Large heaps spill the working set across NUMA nodes, so a lone thread
// also pays remote penalties in proportion to the interleaved fraction.
func (m *Machine) SerialSeconds(work float64, heapSpan Bytes) float64 {
	if work < 0 {
		work = 0
	}
	nodes := 1
	if per := m.Topo.RAM / Bytes(m.Topo.Nodes()); per > 0 {
		nodes = int((heapSpan + per - 1) / per)
	}
	if nodes < 1 {
		nodes = 1
	}
	if max := m.Topo.Nodes(); nodes > max {
		nodes = max
	}
	remoteFrac := m.Cost.InterleaveRemoteFrac * float64(nodes-1) / float64(nodes)
	perThread := 1 / (1 - remoteFrac + remoteFrac/m.Cost.RemoteFactor)
	return work / (m.Cost.LocalBandwidth * perThread)
}

// DefaultGCThreads returns HotSpot's ergonomic ParallelGCThreads value for
// the machine: all cores up to 8, then 8 + 5/8 of the cores beyond 8.
func (m *Machine) DefaultGCThreads() int {
	c := m.Topo.Cores()
	if c <= 8 {
		return c
	}
	return 8 + (c-8)*5/8
}

// DefaultConcGCThreads returns HotSpot's ergonomic ConcGCThreads value:
// (ParallelGCThreads + 3) / 4.
func (m *Machine) DefaultConcGCThreads() int {
	return (m.DefaultGCThreads() + 3) / 4
}
