// Package cassandra models an Apache-Cassandra-2.0-style storage node
// running inside the simulated JVM: a memtable absorbing writes, a commit
// log, SSTable flushes, and commitlog replay at startup (§2.2 of the
// paper).
//
// The node's memory shape is what the paper's server-side experiments
// probe: every write materializes Java objects in the memtable (long-lived
// young allocation that survives and promotes), the memtable is released
// on flush in the default configuration, and in the paper's "stress test"
// configuration the memtable and commitlog budgets equal the heap, so
// nothing is ever released and the old generation fills until the
// collector's worst-case behaviour shows (a 4-minute ParallelOld full
// collection; 2–3.5 s CMS/G1 pauses).
package cassandra

import (
	"fmt"
	"math"

	"jvmgc/internal/event"
	"jvmgc/internal/gclog"
	"jvmgc/internal/gcmodel"
	"jvmgc/internal/hdrhist"
	"jvmgc/internal/machine"
	"jvmgc/internal/simtime"
	"jvmgc/internal/telemetry"
)

// Config parameterizes a Cassandra node simulation.
type Config struct {
	// CollectorName selects the GC (the paper runs ParallelOld, CMS, G1).
	CollectorName string
	Machine       *machine.Machine
	// Costs overrides the collector cost model (ablation studies); nil
	// selects the calibrated defaults.
	Costs *gcmodel.Costs
	// G1PauseTarget overrides G1's -XX:MaxGCPauseMillis goal; zero keeps
	// the 200 ms default. Ignored by other collectors.
	G1PauseTarget simtime.Duration
	// Heap and Young mirror the paper's server configuration: 64 GB heap,
	// 12 GB young generation.
	Heap  machine.Bytes
	Young machine.Bytes

	// ClientThreads is the number of concurrent client connections
	// (paper: 100 for the loading phase).
	ClientThreads int
	// OpsPerSec is the sustained operation rate the client offers while
	// the server is running (closed-loop saturation throughput).
	OpsPerSec float64
	// WriteFraction is the share of operations that insert/update
	// (loading phase: 1.0; paper's custom workload: 0.5). Zero or
	// negative selects the loading-phase default of 1.0.
	WriteFraction float64

	// RecordSize is the YCSB record payload (default 1 KB).
	RecordSize machine.Bytes
	// HeapPerRecord is the Java-object footprint a record occupies in the
	// memtable (object headers, boxing, index entries — several times the
	// payload).
	HeapPerRecord machine.Bytes
	// TransientPerOp is the garbage allocated to serve one operation
	// (request parsing, response buffers).
	TransientPerOp machine.Bytes
	// MediumFrac is the fraction of transient allocation that lives for
	// MeanMedium before dying (per-request state, compaction buffers,
	// hinted handoffs). Medium garbage that survives a young collection
	// promotes and then dies in the old generation — reclaimed
	// concurrently by CMS/G1 but accumulated by the throughput
	// collectors until a full collection.
	MediumFrac float64
	// MeanMedium is the medium component's mean lifetime.
	MeanMedium simtime.Duration

	// MemtableBudget is the flush threshold. The stress configuration
	// sets it to the heap size, so a flush never happens.
	MemtableBudget machine.Bytes
	// RetentionFrac is the fraction of flushed memtable data retained in
	// memory afterwards (key cache, row cache, index summaries, bloom
	// filters).
	RetentionFrac float64

	// PreloadBytes is the memtable volume already in the commitlog at
	// startup; the node replays it into memory before serving (the
	// paper's stress test pre-loads the database).
	PreloadBytes machine.Bytes
	// ReplayOpsPerSec is the replay speed (commitlog apply is faster than
	// client-driven writes).
	ReplayOpsPerSec float64

	// CompactionThreads is the CPU the storage engine spends merging
	// SSTables whenever at least CompactionThreshold tables await
	// compaction (0 threads disables compaction modelling).
	CompactionThreads   int
	CompactionThreshold int

	// Duration is the client-driven part of the run (paper: 1 h / 2 h).
	Duration simtime.Duration

	// Recorder, when non-nil, receives the node's flight-recorder stream:
	// the server JVM's GC spans and time series plus storage-engine spans
	// (commitlog replay, memtable flushes, compactions) on the cassandra
	// track. Nil disables all telemetry at zero cost.
	Recorder *telemetry.Recorder

	// StreamingStats selects bounded-memory statistics inside the server
	// JVM (safepoint pauses fold into a histogram instead of a retained
	// sample slice). The simulation itself is unaffected.
	StreamingStats bool

	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.CollectorName == "" {
		c.CollectorName = "ParallelOld"
	}
	if c.Machine == nil {
		c.Machine = machine.New(machine.PaperTestbed())
	}
	if c.Heap <= 0 {
		c.Heap = 64 * machine.GB
	}
	if c.Young <= 0 {
		c.Young = 12 * machine.GB
	}
	if c.ClientThreads <= 0 {
		c.ClientThreads = 100
	}
	if c.WriteFraction <= 0 {
		c.WriteFraction = 1.0
	}
	if c.OpsPerSec <= 0 {
		c.OpsPerSec = 7000
	}
	if c.RecordSize <= 0 {
		c.RecordSize = machine.KB
	}
	if c.HeapPerRecord <= 0 {
		c.HeapPerRecord = 3 * machine.KB
	}
	if c.TransientPerOp <= 0 {
		c.TransientPerOp = 20 * machine.KB
	}
	if c.MediumFrac <= 0 {
		c.MediumFrac = 0.15
	}
	if c.MeanMedium <= 0 {
		c.MeanMedium = 5 * simtime.Second
	}
	if c.MemtableBudget <= 0 {
		c.MemtableBudget = 4 * machine.GB
	}
	if c.RetentionFrac <= 0 {
		c.RetentionFrac = 0.25
	}
	if c.ReplayOpsPerSec <= 0 {
		c.ReplayOpsPerSec = 4 * c.OpsPerSec
	}
	if c.CompactionThreads < 0 {
		c.CompactionThreads = 0
	}
	if c.CompactionThreshold <= 0 {
		c.CompactionThreshold = 4
	}
	if c.Duration <= 0 {
		c.Duration = 2 * simtime.Hour
	}
	return c
}

// DefaultConfig returns the paper's default-configuration experiment
// (§4.1 first bullet): flushing enabled, empty database at start.
func DefaultConfig(collectorName string, duration simtime.Duration) Config {
	c := Config{CollectorName: collectorName, Duration: duration}.withDefaults()
	return c
}

// StressConfig returns the paper's stress-test configuration (§4.1 second
// bullet): memtable and commitlog sized like the heap (never flush), the
// database pre-loaded so replay partially fills memory before the
// benchmark starts.
func StressConfig(collectorName string, duration simtime.Duration) Config {
	c := Config{CollectorName: collectorName, Duration: duration}.withDefaults()
	c.MemtableBudget = c.Heap // never flush
	// A node that keeps its whole dataset on-heap sustains far fewer
	// operations per second, each allocating more (wide memtable lookups,
	// compaction backlog), and per-request state lives longer.
	c.OpsPerSec = 1000
	c.TransientPerOp = 80 * machine.KB
	c.MediumFrac = 0.05
	c.MeanMedium = 10 * simtime.Minute
	c.PreloadBytes = 22 * machine.GB
	return c
}

// FlushEvent records one memtable flush.
type FlushEvent struct {
	Time     simtime.Time
	Released machine.Bytes
}

// RecordPoint samples the database size over time (drives the read-path
// service time's growth steps).
type RecordPoint struct {
	Time    simtime.Time
	Records int64
}

// Result is the outcome of one server run.
type Result struct {
	Config Config
	// Log is the server JVM's GC log.
	Log *gclog.Log
	// ReplayDuration is the startup commitlog replay time (included in
	// the timeline before the client phase).
	ReplayDuration simtime.Duration
	// TotalDuration is replay plus the client-driven phase.
	TotalDuration simtime.Duration
	// Flushes lists the memtable flushes that occurred.
	Flushes []FlushEvent
	// Compactions counts the background SSTable merges that ran.
	Compactions int
	// Records samples the database size over time.
	Records []RecordPoint
	// FinalOldLive is the old-generation live volume at the end.
	FinalOldLive machine.Bytes
	// OpsCompleted estimates the operations served during the client
	// phase (reduced by stop-the-world time).
	OpsCompleted int64
	// PauseHist is the server JVM's streaming stop-the-world pause
	// distribution (seconds): every pause is recorded as it happens, so
	// consumers get percentiles without re-walking the GC log.
	PauseHist *hdrhist.Hist
}

// Run simulates the node: optional commitlog replay, then Duration of
// client-driven load, flushing per configuration. It is the one-node
// sequential form of NewNode/Start: the node is mounted on a private
// wheel and stepped to completion on the calling goroutine.
func Run(cfg Config) (Result, error) {
	n, err := NewNode(cfg, event.New())
	if err != nil {
		return Result{}, err
	}
	n.Start()
	n.clock.RunAll()
	return n.Result(), nil
}

// RecordsAt returns the database size at instant t by stepping the sample
// curve.
func (r Result) RecordsAt(t simtime.Time) int64 {
	n := int64(0)
	for _, p := range r.Records {
		if p.Time > t {
			break
		}
		n = p.Records
	}
	return n
}

// Describe summarizes the run for logs and CLI output.
func (r Result) Describe() string {
	p, full := r.Log.CountPauses()
	return fmt.Sprintf("%s: %v total (%v replay), %d pauses (%d full), max pause %v, old live %v, %d flushes",
		r.Config.CollectorName, r.TotalDuration, r.ReplayDuration, p, full,
		r.Log.MaxPause(), r.FinalOldLive, len(r.Flushes))
}

// SaturationTime estimates when the old generation would fill at the
// configured write rate (diagnostic; MaxTime when writes never fill it).
func (cfg Config) SaturationTime() simtime.Duration {
	c := cfg.withDefaults()
	longRate := c.OpsPerSec * c.WriteFraction * float64(c.HeapPerRecord)
	if longRate <= 0 || c.MemtableBudget < c.Heap {
		return simtime.Duration(math.MaxInt64)
	}
	old := float64(c.Heap - c.Young)
	return simtime.Seconds(old / longRate)
}
