package cassandra

import (
	"testing"

	"jvmgc/internal/machine"
	"jvmgc/internal/simtime"
)

// shortStress returns a scaled-down stress config that keeps the unit
// tests fast while preserving the memory dynamics (smaller heap, shorter
// run, proportional preload).
func shortStress(collector string) Config {
	cfg := StressConfig(collector, 20*simtime.Minute)
	cfg.Heap = 16 * machine.GB
	cfg.Young = 3 * machine.GB
	cfg.MemtableBudget = cfg.Heap
	cfg.PreloadBytes = 4 * machine.GB
	cfg.OpsPerSec = 800
	cfg.Seed = 5
	return cfg
}

func TestStressConfigNeverFlushes(t *testing.T) {
	res, err := Run(shortStress("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flushes) != 0 {
		t.Errorf("stress config flushed %d times", len(res.Flushes))
	}
	if res.FinalOldLive < 4*machine.GB {
		t.Errorf("old live %v; writes did not accumulate", res.FinalOldLive)
	}
}

func TestDefaultConfigFlushes(t *testing.T) {
	cfg := DefaultConfig("ParallelOld", 20*simtime.Minute)
	cfg.Heap = 16 * machine.GB
	cfg.Young = 3 * machine.GB
	cfg.MemtableBudget = 2 * machine.GB
	cfg.Seed = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flushes) == 0 {
		t.Fatal("default config never flushed")
	}
	// Flushing keeps live data bounded: well below what the same write
	// volume would pin without flushes.
	written := float64(res.OpsCompleted) * float64(cfg.HeapPerRecord)
	if float64(res.FinalOldLive) > 0.8*written {
		t.Errorf("old live %v vs written %v: flushes ineffective", res.FinalOldLive, machine.Bytes(written))
	}
}

func TestReplayPrecedesServing(t *testing.T) {
	cfg := shortStress("CMS")
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayDuration <= 0 {
		t.Error("no replay phase")
	}
	if res.TotalDuration <= simtime.Duration(cfg.Duration) {
		t.Errorf("total %v does not include replay", res.TotalDuration)
	}
	// Replay populates the database before the client phase.
	if res.RecordsAt(simtime.Time(res.ReplayDuration)) == 0 {
		t.Error("no records after replay")
	}
}

func TestNoPreloadNoReplay(t *testing.T) {
	cfg := DefaultConfig("CMS", 5*simtime.Minute)
	cfg.Heap = 8 * machine.GB
	cfg.Young = 2 * machine.GB
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplayDuration != 0 {
		t.Errorf("replay %v without preload", res.ReplayDuration)
	}
}

func TestCollectorDivergenceUnderStress(t *testing.T) {
	// The paper's headline: under the stress configuration ParallelOld
	// eventually stops the world for orders of magnitude longer than CMS.
	run := func(name string) Result {
		cfg := shortStress(name)
		cfg.Duration = 40 * simtime.Minute
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	po := run("ParallelOld")
	cms := run("CMS")
	if po.Log.MaxPause() < 4*cms.Log.MaxPause() {
		t.Errorf("ParallelOld max %v not >> CMS max %v", po.Log.MaxPause(), cms.Log.MaxPause())
	}
	_, poFull := po.Log.CountPauses()
	if poFull == 0 {
		t.Error("ParallelOld never hit a full collection under stress")
	}
	_, cmsFull := cms.Log.CountPauses()
	if cmsFull > poFull {
		t.Errorf("CMS full GCs (%d) exceed ParallelOld's (%d)", cmsFull, poFull)
	}
}

func TestRecordCurveMonotone(t *testing.T) {
	res, err := Run(shortStress("G1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 10 {
		t.Fatalf("only %d record samples", len(res.Records))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Records < res.Records[i-1].Records {
			t.Fatal("record count decreased")
		}
		if res.Records[i].Time <= res.Records[i-1].Time {
			t.Fatal("record samples out of order")
		}
	}
	if got := res.RecordsAt(0); got != 0 {
		// Replay starts at t=0; records accumulate during it, so the
		// count at t=0 must be zero or the replay's first chunk.
		t.Logf("records at 0 = %d", got)
	}
	last := res.Records[len(res.Records)-1]
	if res.RecordsAt(last.Time) != last.Records {
		t.Error("RecordsAt(end) mismatch")
	}
}

func TestOpsCompletedReducedByPauses(t *testing.T) {
	// A run with heavy GC serves fewer operations than offered.
	cfg := shortStress("ParallelOld")
	cfg.Duration = 40 * simtime.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	offered := int64(cfg.OpsPerSec * cfg.Duration.Seconds())
	if res.OpsCompleted >= offered {
		t.Errorf("completed %d >= offered %d despite pauses", res.OpsCompleted, offered)
	}
	if res.OpsCompleted < offered/2 {
		t.Errorf("completed %d < half the offered load", res.OpsCompleted)
	}
}

func TestUnknownCollector(t *testing.T) {
	cfg := shortStress("Azul")
	if _, err := Run(cfg); err == nil {
		t.Error("unknown collector accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(shortStress("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortStress("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Log.String() != b.Log.String() || a.OpsCompleted != b.OpsCompleted {
		t.Error("same seed produced different runs")
	}
}

func TestSaturationTime(t *testing.T) {
	stress := StressConfig("CMS", 2*simtime.Hour)
	if st := stress.SaturationTime(); st <= 0 || st > 24*simtime.Hour {
		t.Errorf("stress saturation = %v", st)
	}
	def := DefaultConfig("CMS", 2*simtime.Hour)
	if st := def.SaturationTime(); st != simtime.Duration(1<<63-1) {
		t.Errorf("flushing config saturation = %v, want never", st)
	}
}

func TestDescribeMentionsCollector(t *testing.T) {
	res, err := Run(shortStress("G1"))
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Describe(); len(s) == 0 || s[:2] != "G1" {
		t.Errorf("Describe = %q", s)
	}
}

func TestPausesOrderedInTime(t *testing.T) {
	res, err := Run(shortStress("CMS"))
	if err != nil {
		t.Fatal(err)
	}
	pauses := res.Log.Pauses()
	for i := 1; i < len(pauses); i++ {
		if pauses[i].Start < pauses[i-1].Start {
			t.Fatal("pauses out of order")
		}
	}
	if len(pauses) == 0 {
		t.Error("stress run produced no pauses")
	}
	for _, e := range pauses {
		if !e.Kind.IsPause() {
			t.Errorf("non-pause kind %v in Pauses()", e.Kind)
		}
	}
}

func TestCompactionRunsAndStealsCPU(t *testing.T) {
	base := DefaultConfig("ParallelOld", 30*simtime.Minute)
	base.Heap = 16 * machine.GB
	base.Young = 3 * machine.GB
	base.MemtableBudget = machine.GB
	base.Seed = 21

	withComp := base
	withComp.CompactionThreads = 8
	withComp.CompactionThreshold = 2
	rc, err := Run(withComp)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Compactions == 0 {
		t.Fatal("no compactions despite frequent flushes")
	}

	without := base
	r0, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Compactions != 0 {
		t.Errorf("compactions ran with 0 threads: %d", r0.Compactions)
	}
	// The compacting node serves fewer operations: its merges steal CPU
	// from the mutators.
	if rc.OpsCompleted >= r0.OpsCompleted {
		t.Errorf("compaction did not cost throughput: %d vs %d ops",
			rc.OpsCompleted, r0.OpsCompleted)
	}
}

func TestBackgroundCPUAffectsProgressOnly(t *testing.T) {
	// Sanity at the jvm level through the cassandra path: a run with
	// compaction still finishes and records consistent flush counts.
	cfg := DefaultConfig("CMS", 20*simtime.Minute)
	cfg.Heap = 16 * machine.GB
	cfg.Young = 3 * machine.GB
	cfg.MemtableBudget = machine.GB
	cfg.CompactionThreads = 4
	cfg.Seed = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flushes) == 0 {
		t.Error("no flushes")
	}
	for i := 1; i < len(res.Flushes); i++ {
		if res.Flushes[i].Time <= res.Flushes[i-1].Time {
			t.Fatal("flushes out of order")
		}
	}
}
