package cassandra

import (
	"strings"
	"testing"

	"jvmgc/internal/gclog"
	"jvmgc/internal/simtime"
)

func mkLog(durations ...simtime.Duration) *gclog.Log {
	l := gclog.New()
	at := simtime.Time(0)
	for _, d := range durations {
		at = at.Add(60 * simtime.Second)
		kind := gclog.PauseMinor
		if d > 30*simtime.Second {
			kind = gclog.PauseFull
		}
		l.Append(gclog.Event{Start: at, Duration: d, Kind: kind, Cause: gclog.CauseAllocationFailure})
	}
	return l
}

func TestAnalyzeThreshold(t *testing.T) {
	fd := DefaultFailureDetector()
	log := mkLog(2*simtime.Second, 8*simtime.Second, 12*simtime.Second, 3*simtime.Minute)
	sus := fd.Analyze(log)
	// Only the 12 s and 3 min pauses exceed the 8 s timeout (8 s exactly
	// does not).
	if len(sus) != 2 {
		t.Fatalf("suspicions = %d, want 2", len(sus))
	}
	if sus[0].Pause.Duration != 12*simtime.Second {
		t.Errorf("first suspicion pause = %v", sus[0].Pause.Duration)
	}
	if sus[0].Duration != 4*simtime.Second {
		t.Errorf("first suspicion lasted %v, want 4s", sus[0].Duration)
	}
	if got := Downtime(sus); got != 4*simtime.Second+(3*simtime.Minute-8*simtime.Second) {
		t.Errorf("downtime = %v", got)
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	fd := FailureDetector{}
	if got := fd.Analyze(mkLog(time10())); got != nil {
		t.Errorf("zero timeout produced suspicions: %v", got)
	}
	if Downtime(nil) != 0 {
		t.Error("empty downtime nonzero")
	}
}

func time10() simtime.Duration { return 10 * simtime.Second }

func TestDescribeSuspicions(t *testing.T) {
	fd := DefaultFailureDetector()
	quiet := DescribeSuspicions("CMS", fd.Analyze(mkLog(simtime.Second)))
	if !strings.Contains(quiet, "no GC pause exceeded") {
		t.Errorf("quiet description: %q", quiet)
	}
	loud := DescribeSuspicions("ParallelOld", fd.Analyze(mkLog(4*simtime.Minute)))
	for _, want := range []string{"ParallelOld", "1 suspicion", "4m"} {
		if !strings.Contains(loud, want) {
			t.Errorf("description %q missing %q", loud, want)
		}
	}
}

func TestFailureDetectorOnRealRuns(t *testing.T) {
	// The paper's conclusion end-to-end: ParallelOld's stress-test full
	// collection trips the failure detector; CMS's pauses do not.
	fd := DefaultFailureDetector()

	po, err := Run(func() Config {
		cfg := shortStress("ParallelOld")
		cfg.Duration = 40 * simtime.Minute
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	if sus := fd.Analyze(po.Log); len(sus) == 0 {
		t.Error("ParallelOld's full GC did not trip the failure detector")
	}

	cms, err := Run(func() Config {
		cfg := shortStress("CMS")
		cfg.Duration = 40 * simtime.Minute
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	if sus := fd.Analyze(cms.Log); len(sus) != 0 {
		t.Errorf("CMS tripped the failure detector %d time(s), worst %v",
			len(sus), worstPause(sus))
	}
}
