package cassandra

import (
	"fmt"

	"jvmgc/internal/gclog"
	"jvmgc/internal/simtime"
)

// FailureDetector models the cluster-membership consequence the paper's
// §4.1 warns about: "in a distributed system, even a lag of a few seconds
// might result in the current node being considered down and the
// initiation of a cumbersome synchronization protocol."
//
// Cassandra's gossip failure detection declares a peer down when its
// heartbeats stop arriving for longer than the detector's effective
// timeout (the phi-accrual detector's threshold behaves like an adaptive
// timeout of a few seconds). A stop-the-world pause freezes the gossip
// threads with everything else, so any pause longer than the timeout is
// a suspicion event — and every suspicion triggers reconnection, hint
// accumulation and read-repair churn when the node "returns".
type FailureDetector struct {
	// HeartbeatInterval is the gossip period (Cassandra: 1 s).
	HeartbeatInterval simtime.Duration
	// SuspicionTimeout is the silence after which peers declare the node
	// down (phi-accrual with default settings lands in the 5–10 s range;
	// the model uses a fixed effective value).
	SuspicionTimeout simtime.Duration
}

// DefaultFailureDetector returns gossip parameters matching a Cassandra
// 2.0 cluster with default phi-accrual settings.
func DefaultFailureDetector() FailureDetector {
	return FailureDetector{
		HeartbeatInterval: simtime.Second,
		SuspicionTimeout:  8 * simtime.Second,
	}
}

// Suspicion is one interval during which peers considered the node down.
type Suspicion struct {
	// Start is when the silence crossed the timeout.
	Start simtime.Time
	// Duration is how long the node stayed suspected beyond that point
	// (until the pause ended and the next heartbeat flowed).
	Duration simtime.Duration
	// Pause is the stop-the-world event responsible.
	Pause gclog.Event
}

// Analyze scans a GC log for pauses long enough to trip the detector and
// returns the resulting suspicion events.
func (fd FailureDetector) Analyze(log *gclog.Log) []Suspicion {
	if fd.SuspicionTimeout <= 0 {
		return nil
	}
	var out []Suspicion
	for _, e := range log.Pauses() {
		// The worst case: the last heartbeat left just before the pause,
		// so silence ≈ pause duration + one heartbeat interval. The model
		// uses the pause duration alone (the optimistic bound).
		if e.Duration <= fd.SuspicionTimeout {
			continue
		}
		out = append(out, Suspicion{
			Start:    e.Start.Add(fd.SuspicionTimeout),
			Duration: e.Duration - fd.SuspicionTimeout,
			Pause:    e,
		})
	}
	return out
}

// Downtime sums the total suspected-down time across the suspicions.
func Downtime(suspicions []Suspicion) simtime.Duration {
	var sum simtime.Duration
	for _, s := range suspicions {
		sum += s.Duration
	}
	return sum
}

// DescribeSuspicions renders a short cluster-impact report.
func DescribeSuspicions(collector string, suspicions []Suspicion) string {
	if len(suspicions) == 0 {
		return fmt.Sprintf("%s: no GC pause exceeded the failure-detector timeout", collector)
	}
	return fmt.Sprintf("%s: %d suspicion event(s), %v total suspected-down time (worst pause %v)",
		collector, len(suspicions), Downtime(suspicions), worstPause(suspicions))
}

func worstPause(suspicions []Suspicion) simtime.Duration {
	var max simtime.Duration
	for _, s := range suspicions {
		if s.Pause.Duration > max {
			max = s.Pause.Duration
		}
	}
	return max
}
