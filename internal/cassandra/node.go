package cassandra

import (
	"jvmgc/internal/collector"
	"jvmgc/internal/demography"
	"jvmgc/internal/event"
	"jvmgc/internal/heapmodel"
	"jvmgc/internal/jvm"
	"jvmgc/internal/machine"
	"jvmgc/internal/simtime"
	"jvmgc/internal/telemetry"
	"jvmgc/internal/xrand"
)

// slice is the granularity of the storage-engine driver: flush checks,
// compaction scheduling and record sampling happen once per slice.
const slice = 5 * simtime.Second

// Node is a Cassandra server simulation mounted on an event wheel. The
// storage-engine driver (commitlog replay, the per-slice flush/compaction
// loop) runs as post-band events on the same wheel as the server JVM, so
// a Node can be stepped standalone (Run), or as one shard of an
// event.Shards ensemble with sibling nodes advancing on other workers.
//
// The driver observes the JVM exactly as the original sequential
// RunFor-then-inspect loop did — post-band events fire after every JVM
// event at the same instant — so a Node run is byte-identical to the
// legacy Run whatever the worker count.
type Node struct {
	cfg   Config
	clock *event.Sim
	j     *jvm.JVM
	res   Result

	ctrFlushes      *telemetry.CounterHandle
	ctrFlushedBytes *telemetry.CounterHandle
	ctrCompactions  *telemetry.CounterHandle

	// Workload shape, fixed at construction.
	writeRate float64
	allocRate float64
	longFrac  float64

	// Driver state across slices.
	replayStart     simtime.Time
	deadline        simtime.Time
	lastProgress    float64
	sampleEvery     simtime.Duration
	nextSample      simtime.Time
	memtable        float64
	retained        float64
	records         int64
	pendingSSTables int
	compactionLeft  int
	done            bool

	hReplay replayHandler
	hSlice  sliceHandler
}

type replayHandler struct{ n *Node }

func (h *replayHandler) Fire() { h.n.onReplayDone() }

type sliceHandler struct{ n *Node }

func (h *sliceHandler) Fire() { h.n.onSlice() }

// NewNode builds a server JVM and its storage-engine driver on the given
// wheel (which must be at its start instant). Call Start to mount the
// driver, step the wheel (directly or through an ensemble) until the node
// halts it, then read Result.
func NewNode(cfg Config, clock *event.Sim) (*Node, error) {
	cfg = cfg.withDefaults()
	colCfg := collector.Config{Machine: cfg.Machine, G1PauseTarget: cfg.G1PauseTarget}
	if cfg.Costs != nil {
		colCfg.Costs = *cfg.Costs
	}
	col, err := collector.New(cfg.CollectorName, colCfg)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed).SplitLabeled("cassandra/" + cfg.CollectorName)

	n := &Node{cfg: cfg, clock: clock}
	n.hReplay.n = n
	n.hSlice.n = n
	n.res = Result{Config: cfg}
	// The record curve gains ~400 duration-spaced samples plus endpoints.
	n.res.Records = make([]RecordPoint, 0, 404)
	n.ctrFlushes = cfg.Recorder.CounterHandle("cassandra.flushes")
	n.ctrFlushedBytes = cfg.Recorder.CounterHandle("cassandra.flushed_bytes")
	n.ctrCompactions = cfg.Recorder.CounterHandle("cassandra.compactions")

	// Workload shape: writes deposit HeapPerRecord of long-lived bytes in
	// the memtable; every op allocates TransientPerOp of short/medium
	// garbage.
	n.writeRate = cfg.OpsPerSec * cfg.WriteFraction
	longRate := n.writeRate * float64(cfg.HeapPerRecord)
	transientRate := cfg.OpsPerSec * float64(cfg.TransientPerOp)
	n.allocRate = longRate + transientRate
	if n.allocRate > 0 {
		n.longFrac = longRate / n.allocRate
	}
	// Transient garbage: mostly request-scoped, a configured slice of
	// per-request state alive for MeanMedium.
	shortFrac := (1 - n.longFrac) * (1 - cfg.MediumFrac)
	mediumFrac := (1 - n.longFrac) * cfg.MediumFrac

	w := jvm.Workload{
		Threads:   cfg.ClientThreads,
		AllocRate: n.allocRate,
		Profile: demography.Profile{
			ShortFrac:  shortFrac,
			MeanShort:  100 * simtime.Millisecond,
			MediumFrac: mediumFrac,
			MeanMedium: cfg.MeanMedium,
		},
	}
	n.j = jvm.New(jvm.Config{
		Machine:   cfg.Machine,
		Collector: col,
		Geometry: heapmodel.Geometry{
			Heap: cfg.Heap, Young: cfg.Young,
			SurvivorRatio: heapmodel.DefaultSurvivorRatio,
		},
		// The paper pins -Xmn for the throughput collectors; G1 keeps its
		// pause-target-driven sizing (fixing G1's young disables its pause
		// goal, which no deployment does).
		YoungExplicit:  col.Name() != "G1",
		Recorder:       cfg.Recorder,
		StreamingStats: cfg.StreamingStats,
		Seed:           rng.Uint64(),
		Clock:          clock,
	}, w)
	return n, nil
}

// JVM exposes the server JVM (diagnostics; read it only while the wheel
// is parked).
func (n *Node) JVM() *jvm.JVM { return n.j }

// Done reports whether the driver has reached its deadline and halted
// the wheel.
func (n *Node) Done() bool { return n.done }

// Result returns the run outcome. It is complete once Done reports true.
func (n *Node) Result() Result { return n.res }

// Start mounts the driver on the wheel: commitlog replay first if the
// database is preloaded, then the client-driven slice loop. The node
// halts its wheel when the run completes.
func (n *Node) Start() {
	cfg := n.cfg
	// Commitlog replay: apply the preloaded data at replay speed. Replay
	// writes flow through the young generation like client writes, but at
	// ReplayOpsPerSec.
	if cfg.PreloadBytes > 0 && n.longFrac > 0 {
		// Replay applies the commitlog at ReplayOpsPerSec writes per
		// second. The JVM's lifetime profile is fixed for the run, so the
		// replay allocation rate is scaled such that the profile's
		// long-lived slice reproduces the replay's memtable build rate
		// (the remainder models decode garbage, which replay produces in
		// abundance).
		replayLong := cfg.ReplayOpsPerSec * float64(cfg.HeapPerRecord)
		n.j.SetAllocRate(replayLong / n.longFrac)
		replaySeconds := float64(cfg.PreloadBytes) / replayLong
		n.replayStart = n.j.Now()
		n.clock.SchedulePost(n.replayStart.Add(simtime.Seconds(replaySeconds)), &n.hReplay)
		return
	}
	n.beginClientPhase()
}

// onReplayDone fires at the replay deadline, after every JVM event at
// that instant, exactly where the legacy loop returned from RunFor.
func (n *Node) onReplayDone() {
	cfg := n.cfg
	n.j.Sync()
	n.res.ReplayDuration = n.j.Now().Sub(n.replayStart)
	if cfg.Recorder != nil {
		cfg.Recorder.Span(telemetry.TrackCassandra, "commitlog-replay",
			n.replayStart, n.res.ReplayDuration, 0,
			telemetry.ByteCount("replayed", cfg.PreloadBytes),
		)
		cfg.Recorder.Add("cassandra.replayed_bytes", int64(cfg.PreloadBytes))
	}
	n.memtable = float64(cfg.PreloadBytes)
	n.records = int64(cfg.PreloadBytes / cfg.HeapPerRecord)
	n.j.SetAllocRate(n.allocRate)
	n.res.Records = append(n.res.Records, RecordPoint{Time: n.j.Now(), Records: n.records})
	n.beginClientPhase()
}

// beginClientPhase arms the slice loop for Duration of client-driven
// load.
func (n *Node) beginClientPhase() {
	n.deadline = n.j.Now().Add(n.cfg.Duration)
	n.lastProgress = n.j.Progress()
	n.sampleEvery = n.cfg.Duration / 400
	if n.sampleEvery < slice {
		n.sampleEvery = slice
	}
	n.nextSample = n.j.Now()
	n.scheduleSlice()
}

// scheduleSlice arms the next slice boundary (never past the deadline).
func (n *Node) scheduleSlice() {
	step := slice
	if remaining := n.deadline.Sub(n.j.Now()); remaining < step {
		step = remaining
	}
	n.clock.SchedulePost(n.j.Now().Add(step), &n.hSlice)
}

// onSlice is the storage-engine driver: it fires at each slice boundary
// after all JVM work at that instant, performs the flush / compaction /
// sampling bookkeeping of the original sequential loop verbatim, and
// re-arms itself until the deadline.
func (n *Node) onSlice() {
	cfg := n.cfg
	j := n.j
	j.Sync()

	// Work actually performed this slice (pauses freeze progress).
	progressed := j.Progress() - n.lastProgress
	n.lastProgress = j.Progress()
	n.res.OpsCompleted += int64(progressed * cfg.OpsPerSec)
	written := progressed * n.writeRate * float64(cfg.HeapPerRecord)
	n.memtable += written
	n.records += int64(progressed * n.writeRate)

	// Flush when the memtable exceeds its budget. A flush writes the
	// SSTable out and releases the memtable objects, retaining caches.
	if n.memtable >= float64(cfg.MemtableBudget) && cfg.MemtableBudget < cfg.Heap {
		releasable := n.memtable * (1 - cfg.RetentionFrac)
		totalLong := n.memtable + n.retained
		if totalLong > 0 {
			j.ReleaseLongLived(releasable / totalLong)
		}
		n.res.Flushes = append(n.res.Flushes, FlushEvent{
			Time: j.Now(), Released: machine.Bytes(releasable),
		})
		if cfg.Recorder != nil {
			cfg.Recorder.Span(telemetry.TrackCassandra, "memtable-flush",
				j.Now(), 0, 0,
				telemetry.ByteCount("released", machine.Bytes(releasable)),
				telemetry.ByteCount("retained", machine.Bytes(n.memtable*cfg.RetentionFrac)),
			)
			n.ctrFlushes.Add(1)
			n.ctrFlushedBytes.Add(int64(releasable))
		}
		n.retained += n.memtable * cfg.RetentionFrac
		n.memtable = 0
		n.pendingSSTables++
	}

	// Background compaction: once enough SSTables pile up, the merge
	// occupies CompactionThreads cores for a number of slices
	// proportional to the merged volume.
	if cfg.CompactionThreads > 0 {
		switch {
		case n.compactionLeft > 0:
			n.compactionLeft--
			if n.compactionLeft == 0 {
				j.SetBackgroundCPU(0)
			}
		case n.pendingSSTables >= cfg.CompactionThreshold:
			// Merging threshold×budget bytes at ~150 MB/s/thread.
			mergeBytes := float64(n.pendingSSTables) * float64(cfg.MemtableBudget)
			secs := mergeBytes / (150e6 * float64(cfg.CompactionThreads))
			n.compactionLeft = int(secs/slice.Seconds()) + 1
			n.pendingSSTables = 0
			n.res.Compactions++
			if cfg.Recorder != nil {
				cfg.Recorder.Span(telemetry.TrackCassandra, "compaction",
					j.Now(), simtime.Duration(n.compactionLeft)*slice, 0,
					telemetry.ByteCount("merged", machine.Bytes(mergeBytes)),
					telemetry.Num("threads", float64(cfg.CompactionThreads)),
				)
				n.ctrCompactions.Add(1)
			}
			j.SetBackgroundCPU(cfg.CompactionThreads)
		}
	}

	if j.Now() >= n.nextSample {
		n.res.Records = append(n.res.Records, RecordPoint{Time: j.Now(), Records: n.records})
		n.nextSample = j.Now().Add(n.sampleEvery)
	}

	if j.Now() < n.deadline {
		n.scheduleSlice()
		return
	}
	n.finish()
}

// finish seals the result and halts the wheel, retiring this node's
// shard in an ensemble run.
func (n *Node) finish() {
	j := n.j
	if cnt := len(n.res.Records); cnt == 0 || n.res.Records[cnt-1].Time < j.Now() {
		n.res.Records = append(n.res.Records, RecordPoint{Time: j.Now(), Records: n.records})
	}
	n.res.TotalDuration = j.Now().Sub(0)
	n.res.Log = j.Log()
	n.res.FinalOldLive = j.OldLive()
	n.res.PauseHist = j.PauseDistribution()
	if n.cfg.Recorder != nil {
		n.cfg.Recorder.Add("cassandra.ops_completed", n.res.OpsCompleted)
	}
	n.done = true
	n.clock.Halt()
}
