package fleet_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/fleet"
	"jvmgc/internal/hdrhist"
	"jvmgc/internal/labd"
	"jvmgc/internal/labd/client"
)

// handlerSwap lets a listener exist before the handler behind it does:
// fleet wiring needs every node's URL up front (the membership map),
// but a node's handler needs the router, which needs the membership.
type handlerSwap struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *handlerSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

type testNode struct {
	id  string
	ts  *httptest.Server
	rt  *fleet.Router
	srv *labd.Server
}

// startFleet brings up a fleet of real daemons on ephemeral listeners,
// each with an embedded router and the peer cache tier wired. chaosFor
// may arm fault sites on individual nodes (nil = no chaos anywhere).
// The returned kill function takes a node down the way a crash would:
// in-flight connections cut, listener closed, no drain.
func startFleet(t *testing.T, ids []string, chaosFor func(id string) *faultinject.Injector) (map[string]*testNode, func(victim string)) {
	t.Helper()
	nodes := make(map[string]*testNode, len(ids))
	urls := make(map[string]string, len(ids))
	swaps := make(map[string]*handlerSwap, len(ids))
	for _, id := range ids {
		swap := &handlerSwap{}
		ts := httptest.NewServer(swap)
		nodes[id] = &testNode{id: id, ts: ts}
		urls[id] = ts.URL
		swaps[id] = swap
	}
	kill := func(victim string) {
		n := nodes[victim]
		n.ts.CloseClientConnections()
		_ = n.ts.Listener.Close()
	}
	for _, id := range ids {
		var chaos *faultinject.Injector
		if chaosFor != nil {
			chaos = chaosFor(id)
		}
		rt, err := fleet.New(fleet.Config{
			Self:     id,
			Nodes:    urls,
			Chaos:    chaos,
			KillHook: kill,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := labd.New(labd.Config{
			Workers:    2,
			QueueDepth: 64,
			NodeID:     id,
			Peers:      rt,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetLocal(srv)
		swaps[id].set(rt.Handler())
		nodes[id].rt = rt
		nodes[id].srv = srv
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = n.srv.Drain(ctx)
			cancel()
		}
	})
	return nodes, kill
}

func sweepSpecs(n int) []labd.JobSpec {
	specs := make([]labd.JobSpec, n)
	for i := range specs {
		specs[i] = labd.JobSpec{
			Kind:            labd.KindSimulate,
			Collector:       "CMS",
			HeapBytes:       2 << 30,
			DurationSeconds: 5,
			Seed:            uint64(i + 1),
		}
	}
	return specs
}

// TestFleetChaosNodeKillByteIdentity is the subsystem's acceptance
// test: a fixed-seed chaos campaign kills one fleet node mid-batch, the
// entry router marks it down and re-routes its shard's unfinished jobs
// to their keys' next ring arcs, and the surviving fleet's results are
// byte-identical to a single standalone daemon running the same sweep.
func TestFleetChaosNodeKillByteIdentity(t *testing.T) {
	ctx := context.Background()
	specs := sweepSpecs(12)

	// Ground truth: one standalone daemon, no fleet, no chaos.
	solo, err := labd.New(labd.Config{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	tsSolo := httptest.NewServer(solo.Handler())
	t.Cleanup(func() {
		tsSolo.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = solo.Drain(ctx)
	})
	want, err := client.New(tsSolo.URL).Batch(ctx, specs, 0, nil)
	if err != nil {
		t.Fatalf("ground-truth batch: %v", err)
	}
	for _, r := range want {
		if r.Err != nil {
			t.Fatalf("ground-truth job %d: %v", r.Index, r.Err)
		}
	}

	// The fleet: chaos armed on the entry node only — its second
	// transport operation kills whichever peer it targets, exactly once.
	// Which peer dies depends on goroutine interleaving (shard forwards
	// and peer-cache probes race); byte identity must hold either way,
	// which is the property under test.
	nodes, _ := startFleet(t, []string{"n0", "n1", "n2"}, func(id string) *faultinject.Injector {
		if id != "n0" {
			return nil
		}
		inj, err := faultinject.Parse(7, "fleet/node.kill:after=1,count=1")
		if err != nil {
			t.Fatal(err)
		}
		return inj
	})

	got, err := client.New(nodes["n0"].ts.URL).Batch(ctx, specs, 0, nil)
	if err != nil {
		t.Fatalf("fleet batch: %v", err)
	}
	if len(got) != len(specs) {
		t.Fatalf("fleet batch returned %d results, want %d", len(got), len(specs))
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("fleet job %d failed after node kill: %v", i, r.Err)
		}
		if !bytes.Equal(r.Bytes, want[i].Bytes) {
			t.Errorf("job %d: fleet bytes (%d) differ from single-node bytes (%d)",
				i, len(r.Bytes), len(want[i].Bytes))
		}
		if r.Key != want[i].Key {
			t.Errorf("job %d: content key diverged: %s vs %s", i, r.Key, want[i].Key)
		}
	}

	st := nodes["n0"].rt.Stats()
	if st.Kills != 1 {
		t.Errorf("injected kills = %d, want exactly 1", st.Kills)
	}
	if st.MarksDown < 1 {
		t.Errorf("marks down = %d, want >= 1 (the victim)", st.MarksDown)
	}
	if st.Reroutes < 1 {
		t.Errorf("reroutes = %d, want >= 1 (the dead shard's unfinished jobs)", st.Reroutes)
	}
}

// TestFleetPeerCacheHit: a result cached on a non-owner node (primed
// directly, as if membership had just changed) is served to the owner
// through the peer tier — no recompute, SHA-256 verified, counted in
// the owner's /metrics, disposition "peer" end to end.
func TestFleetPeerCacheHit(t *testing.T) {
	ctx := context.Background()
	nodes, _ := startFleet(t, []string{"a", "b", "c"}, nil)

	spec := labd.JobSpec{
		Kind:            labd.KindSimulate,
		Collector:       "G1",
		HeapBytes:       4 << 30,
		DurationSeconds: 5,
		Seed:            99,
	}
	key, err := labd.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes["a"].rt.Ring().Lookup(key)
	var donor, entry string
	for id := range nodes {
		if id == owner {
			continue
		}
		if donor == "" {
			donor = id
		} else {
			entry = id
		}
	}

	// Prime the donor as routed traffic would: X-Labd-Routed pins the
	// job locally whatever the ring says.
	payload, _ := json.Marshal(labd.SubmitRequest{Job: spec})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		nodes[donor].ts.URL+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Labd-Routed", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	primed, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("priming the donor: HTTP %d, %v", resp.StatusCode, err)
	}

	// Submit through a third node: routed to the owner, which has never
	// seen the key — the peer tier must find the donor's copy.
	c := client.New(nodes[entry].ts.URL)
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Cache != "peer" {
		t.Errorf("disposition = %q, want \"peer\"", sub.Cache)
	}
	if sub.Node != owner {
		t.Errorf("submission landed on %q, ring owner is %q", sub.Node, owner)
	}
	if !bytes.Equal(sub.Bytes, primed) {
		t.Errorf("peer-served bytes (%d) differ from the donor's original (%d)",
			len(sub.Bytes), len(primed))
	}
	if got := c.Stats().NodeAttempts[owner]; got != 1 {
		t.Errorf("client attributed %d answers to %s, want 1", got, owner)
	}

	// The owner computed nothing and the peer tier shows in its metrics.
	metrics := fetchText(t, nodes[owner].ts.URL+"/metrics")
	if line := "jvmgc_labd_cache_hits_peer_total 1"; !bytes.Contains([]byte(metrics), []byte(line+"\n")) {
		t.Errorf("owner metrics missing %q", line)
	}
	if sims := nodes[owner].srv.NodeState().Counters["labd.simulations"]; sims != 0 {
		t.Errorf("owner ran %d simulations, want 0 (peer tier must pre-empt recompute)", sims)
	}
	if st := nodes[owner].rt.Stats(); st.PeerHits != 1 {
		t.Errorf("owner router peer hits = %d, want 1", st.PeerHits)
	}

	// The wire bytes were verified: the peek endpoint's digest matches.
	peek, hdr := fetchPeek(t, nodes[donor].ts.URL+"/v1/cache/"+key)
	sum := sha256.Sum256(peek)
	if hex.EncodeToString(sum[:]) != hdr {
		t.Errorf("peek digest header %q does not match body", hdr)
	}
	if !bytes.Equal(peek, primed) {
		t.Error("peek bytes differ from the computed result")
	}
}

// TestFleetExactAggregation: the fleet rollup is exact — /fleet/state's
// merged latency histogram is byte-identical to merging the per-node
// histograms by hand, counters are sums, and /fleet/nodes sees every
// member alive.
func TestFleetExactAggregation(t *testing.T) {
	ctx := context.Background()
	nodes, _ := startFleet(t, []string{"a", "b", "c"}, nil)
	entry := client.New(nodes["a"].ts.URL)

	results, err := entry.Batch(ctx, sweepSpecs(9), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Index, r.Err)
		}
	}

	// Hand-merge the per-node snapshots (read directly, no HTTP, so the
	// snapshots cannot drift between the two reads), then compare with
	// what the rollup endpoint serves.
	var states []labd.NodeState
	var wantSubmitted int64
	for _, n := range nodes {
		st := n.srv.NodeState()
		wantSubmitted += st.Counters["labd.jobs.submitted"]
		states = append(states, st)
	}
	want := fleet.MergeStates(states)

	var got fleet.FleetState
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := json.Unmarshal([]byte(fetchText(t, nodes["a"].ts.URL+"/fleet/state")), &got); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got.LatencyHist, want.LatencyHist) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !bytes.Equal(got.LatencyHist, want.LatencyHist) {
		t.Error("fleet latency histogram differs from the hand-merged per-node histograms")
	}
	if !bytes.Equal(got.QueueHist, want.QueueHist) {
		t.Error("fleet queue-wait histogram differs from the hand merge")
	}
	if got.Counters["labd.jobs.submitted"] != wantSubmitted {
		t.Errorf("fleet submitted = %d, want per-node sum %d",
			got.Counters["labd.jobs.submitted"], wantSubmitted)
	}
	if len(got.Nodes) != 3 || len(got.Unreachable) != 0 {
		t.Errorf("rollup saw %d nodes, %d unreachable; want 3, 0",
			len(got.Nodes), len(got.Unreachable))
	}
	h, err := hdrhist.Decode(got.LatencyHist)
	if err != nil {
		t.Fatalf("merged histogram does not decode: %v", err)
	}
	var perNodeCount uint64
	for _, st := range states {
		if nh, err := hdrhist.Decode(st.LatencyHist); err == nil {
			perNodeCount += nh.Count()
		}
	}
	if h.Count() != perNodeCount {
		t.Errorf("merged histogram count %d != per-node sum %d", h.Count(), perNodeCount)
	}

	// The Prometheus rollup serves the same names a single daemon does,
	// so gctop and scrape configs are mode-blind.
	promText := fetchText(t, nodes["a"].ts.URL+"/fleet/metrics")
	for _, name := range []string{
		"jvmgc_fleet_nodes 3",
		"jvmgc_fleet_nodes_reachable 3",
		"jvmgc_labd_jobs_submitted_total",
		"jvmgc_labd_job_latency_hist_seconds_bucket",
		"jvmgc_fleet_node_queue_depth{node=\"a\"}",
		"jvmgc_labd_traces_seen",
		"jvmgc_labd_traces_retained",
	} {
		if !bytes.Contains([]byte(promText), []byte(name)) {
			t.Errorf("/fleet/metrics missing %q", name)
		}
	}

	var membership struct {
		Self  string `json:"self"`
		Nodes []struct {
			ID    string `json:"id"`
			Alive bool   `json:"alive"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(fetchText(t, nodes["a"].ts.URL+"/fleet/nodes")), &membership); err != nil {
		t.Fatal(err)
	}
	if membership.Self != "a" || len(membership.Nodes) != 3 {
		t.Fatalf("membership: self=%q nodes=%d", membership.Self, len(membership.Nodes))
	}
	for _, n := range membership.Nodes {
		if !n.Alive {
			t.Errorf("node %s reported dead in a healthy fleet", n.ID)
		}
	}
}

// TestStandaloneRouter: a router with no local daemon still routes
// submissions and serves the fleet surface.
func TestStandaloneRouter(t *testing.T) {
	ctx := context.Background()
	nodes, _ := startFleet(t, []string{"a", "b"}, nil)

	urls := map[string]string{
		"a": nodes["a"].ts.URL,
		"b": nodes["b"].ts.URL,
	}
	rt, err := fleet.New(fleet.Config{Nodes: urls})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	c := client.New(front.URL)
	spec := sweepSpecs(1)[0]
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	key, _ := labd.SpecKey(spec)
	if want := rt.Ring().Lookup(key); sub.Node != want {
		t.Errorf("standalone router placed on %q, ring owner is %q", sub.Node, want)
	}
	if rt.Stats().Forwards != 1 {
		t.Errorf("forwards = %d, want 1", rt.Stats().Forwards)
	}
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

func fetchPeek(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Labd-Sha256")
}
