package gossip

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/obs"
	"jvmgc/internal/telemetry"
)

// Chaos fault sites on the gossip path (sender side, so a "drop" means
// the message never leaves this node and the probe counts as failed).
const (
	// FaultGossipDrop drops an outgoing gossip message.
	FaultGossipDrop = "fleet/gossip.drop"
	// FaultGossipDelay sleeps before an outgoing gossip message.
	FaultGossipDelay = "fleet/gossip.delay"
)

// errDropped marks a send suppressed by the chaos injector.
var errDropped = errors.New("gossip: message dropped by fault injector")

// pauseFloorMultiplier scales the Go runtime's worst observed GC pause
// into a floor for the suspect timeout. The failure detector's canonical
// false positive is declaring a GC-stalled node dead (Liang et al.,
// arXiv 2405.11182) — and this daemon both simulates GC pauses and
// suffers its own. A suspicion must outlive ~32 worst-case pauses before
// it can become a death, so a pause-length stall is refuted instead.
const pauseFloorMultiplier = 32

// floorRefreshTicks is how often (in gossip ticks) the pause floor is
// re-read from runtime/metrics.
const floorRefreshTicks = 64

// recoveryEvery: every Nth tick probes a dead member instead of a live
// one, carrying the death claim so a revived or re-partitioned node can
// refute it and rejoin.
const recoveryEvery = 8

// Config configures a Gossiper.
type Config struct {
	// Self is this node's fleet ID; URL its advertised base URL.
	Self string
	URL  string
	// Peers seeds the membership with statically-known nodes (id → URL,
	// self ignored) — the -peers boot path, where every node starts
	// with the same list and gossip takes over from there.
	Peers map[string]string
	// Joining starts this node outside placement: it must Join a seed,
	// warm its arc, then Announce. The zero value is the static boot,
	// where the node is placed from the first tick.
	Joining bool

	// Interval is the gossip tick period (default 1s).
	Interval time.Duration
	// ProbeTimeout bounds one ping or ping-req round trip (default
	// Interval/2).
	ProbeTimeout time.Duration
	// SuspectTimeout is how long a suspicion lives before becoming a
	// death declaration (default 8×Interval; raised at runtime to at
	// least pauseFloorMultiplier × the Go runtime's max GC pause).
	SuspectTimeout time.Duration
	// IndirectProbes is K, the number of proxies asked to ping-req a
	// peer that missed its direct probe (default 2).
	IndirectProbes int
	// PiggybackLimit caps membership deltas per message (default 8).
	PiggybackLimit int

	// HTTPClient is the transport for gossip I/O (default
	// http.DefaultClient; tests inject per-fleet transports).
	HTTPClient *http.Client
	// Rec receives the fleet.gossip.* counter family (nil = no counters).
	Rec *telemetry.Recorder
	// Chaos injects drops and delays on the send path (nil = off).
	Chaos *faultinject.Injector
	// OnUpdate fires after every placement change with the new epoch
	// and placement set; the router swaps its ring here. Calls are
	// serialized.
	OnUpdate func(epoch uint64, urls map[string]string)
}

// Gossiper runs the SWIM loop for one node: a periodic probe tick, the
// HTTP endpoints peers probe, and the join/announce/leave choreography.
type Gossiper struct {
	cfg Config
	ml  *Memberlist
	hc  *http.Client

	// Probe rotation state, owned by the tick goroutine.
	targets    []string
	targetIdx  int
	staleSched atomic.Bool // placement changed; rebuild rotation

	// Reused buffers. Owned by the tick→probe chain: tick only touches
	// them after winning the probing CAS, and the probe goroutine
	// releases the flag when done, so ownership hands over through the
	// atomic.
	buf     []byte
	reqBuf  []byte
	piggy   []Delta
	proxies []string
	probing atomic.Bool

	suspectNanos atomic.Int64 // effective suspect timeout
	ticks        atomic.Uint64
	deaths       atomic.Uint64

	rngMu    sync.Mutex
	rngState uint64

	notifyMu sync.Mutex

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	cTicks, cPings, cAcks, cPingFail *telemetry.CounterHandle
}

// gossipCounters is the full fleet.gossip.* family, pre-registered so
// every node exports the same counter set from boot (zeroes included) —
// the leave-vs-kill dissection in EXPERIMENTS.md diffs these.
var gossipCounters = []string{
	"fleet.gossip.ticks",
	"fleet.gossip.pings",
	"fleet.gossip.acks",
	"fleet.gossip.ping.failures",
	"fleet.gossip.pingreq.sent",
	"fleet.gossip.pingreq.relayed",
	"fleet.gossip.suspects",
	"fleet.gossip.refutations",
	"fleet.gossip.deaths",
	"fleet.gossip.joins",
	"fleet.gossip.leaves",
	"fleet.gossip.deltas.applied",
	"fleet.gossip.drops",
	"fleet.gossip.warmup.keys",
	"fleet.gossip.handoff.keys",
	"fleet.gossip.handoff.aborts",
}

// New builds a Gossiper. Start launches the tick loop; the Handler must
// be mounted on the node's HTTP server either way, since even a
// not-yet-started joiner answers pings.
func New(cfg Config) (*Gossiper, error) {
	if cfg.Self == "" || cfg.URL == "" {
		return nil, errors.New("gossip: Config.Self and Config.URL are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.Interval / 2
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 8 * cfg.Interval
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 2
	}
	if cfg.PiggybackLimit <= 0 {
		cfg.PiggybackLimit = 8
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	g := &Gossiper{
		cfg:      cfg,
		ml:       NewMemberlist(cfg.Self, cfg.URL, !cfg.Joining),
		hc:       hc,
		rngState: hashString(cfg.Self) ^ 0x6a09e667f3bcc908,
		done:     make(chan struct{}),
	}
	for id, url := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		g.ml.Apply(Delta{ID: id, URL: url, State: StateAlive, Inc: 0})
	}
	for _, name := range gossipCounters {
		cfg.Rec.Add(name, 0)
	}
	g.cTicks = cfg.Rec.CounterHandle("fleet.gossip.ticks")
	g.cPings = cfg.Rec.CounterHandle("fleet.gossip.pings")
	g.cAcks = cfg.Rec.CounterHandle("fleet.gossip.acks")
	g.cPingFail = cfg.Rec.CounterHandle("fleet.gossip.ping.failures")
	g.refreshSuspectFloor()
	g.staleSched.Store(true)
	return g, nil
}

// hashString is FNV-1a (the same mix the ring and injector use).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// nextRand steps a splitmix64 stream — probe-order shuffling and
// backoff jitter, not cryptography.
func (g *Gossiper) nextRand() uint64 {
	g.rngMu.Lock()
	g.rngState += 0x9e3779b97f4a7c15
	z := g.rngState
	g.rngMu.Unlock()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Memberlist exposes the membership state machine (read-mostly: the
// router renders /fleet/nodes from it).
func (g *Gossiper) Memberlist() *Memberlist { return g.ml }

// Epoch returns the current placement epoch.
func (g *Gossiper) Epoch() uint64 { return g.ml.Epoch() }

// Ticks returns how many gossip ticks have run.
func (g *Gossiper) Ticks() uint64 { return g.ticks.Load() }

// Deaths returns how many death declarations this node has originated.
func (g *Gossiper) Deaths() uint64 { return g.deaths.Load() }

// SuspectTimeout returns the effective suspect timeout — the configured
// value, raised to the GC-pause floor.
func (g *Gossiper) SuspectTimeout() time.Duration {
	return time.Duration(g.suspectNanos.Load())
}

// refreshSuspectFloor re-reads the Go runtime's pause histogram and
// raises the suspect timeout to pauseFloorMultiplier × the worst pause.
func (g *Gossiper) refreshSuspectFloor() {
	eff := g.cfg.SuspectTimeout
	if s := obs.ReadRuntimeSample(); s.PauseMax > 0 {
		if floor := time.Duration(s.PauseMax * pauseFloorMultiplier * float64(time.Second)); floor > eff {
			eff = floor
		}
	}
	g.suspectNanos.Store(int64(eff))
}

// Start launches the tick loop. Safe to call once.
func (g *Gossiper) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-g.done:
				return
			case <-t.C:
				g.tick()
			}
		}
	}()
}

// Close stops the tick loop and waits for any in-flight probe.
func (g *Gossiper) Close() {
	g.closeOnce.Do(func() { close(g.done) })
	g.wg.Wait()
}

// tick runs one protocol period: expire suspicions, pick a target,
// encode the ping, launch the probe. Selection and encoding are
// allocation-free in steady state (BenchmarkGossipTick pins this); the
// network round itself runs on a probe goroutine so a slow peer can't
// stall the ticker.
func (g *Gossiper) tick() {
	n := g.ticks.Add(1)
	g.cTicks.Add(1)
	if n%floorRefreshTicks == 0 {
		g.refreshSuspectFloor()
	}
	if deaths, changed := g.ml.ExpireSuspects(time.Now(), g.SuspectTimeout()); len(deaths) > 0 {
		g.deaths.Add(uint64(len(deaths)))
		g.cfg.Rec.Add("fleet.gossip.deaths", int64(len(deaths)))
		if changed {
			g.notify()
		}
	}
	if g.ml.Left() {
		return // a leaver answers pings but originates nothing
	}
	if !g.probing.CompareAndSwap(false, true) {
		return // previous probe still in flight; skip this period
	}
	target := g.prepareTick(n)
	if target == "" {
		g.probing.Store(false)
		return
	}
	g.wg.Add(1)
	go g.probe(target)
}

// prepareTick picks this period's probe target and encodes the ping into
// g.buf. Returns "" when there is no one to probe. Caller must hold the
// probing flag.
func (g *Gossiper) prepareTick(tickN uint64) string {
	var target string
	if tickN%recoveryEvery == 0 {
		// Recovery period: probe a dead member, if any.
		g.proxies = g.ml.AppendDead(g.proxies[:0])
		if len(g.proxies) > 0 {
			target = g.proxies[int(g.nextRand()%uint64(len(g.proxies)))]
		}
	}
	if target == "" {
		if g.staleSched.Swap(false) || g.targetIdx >= len(g.targets) {
			g.targets = g.ml.AppendProbeTargets(g.targets[:0])
			// Fisher–Yates: random round-robin gives every member a
			// bounded probe interval, unlike pure random selection.
			for i := len(g.targets) - 1; i > 0; i-- {
				j := int(g.nextRand() % uint64(i+1))
				g.targets[i], g.targets[j] = g.targets[j], g.targets[i]
			}
			g.targetIdx = 0
		}
		for g.targetIdx < len(g.targets) {
			id := g.targets[g.targetIdx]
			g.targetIdx++
			// The rotation may predate a state change; skip the unplaced.
			if st, _, ok := g.ml.State(id); ok && st.InPlacement() {
				target = id
				break
			}
		}
	}
	if target == "" {
		return ""
	}
	g.piggy = g.piggy[:0]
	g.piggy = append(g.piggy, g.ml.SelfDelta())
	// Tell a suspect or dead target what the fleet thinks of it: the
	// claim may have exhausted its piggyback budget long ago, and
	// carrying it directly is what gives the target its chance to
	// refute (the GC-pause false-positive path depends on this).
	if st, inc, ok := g.ml.State(target); ok && (st == StateSuspect || st == StateDead) {
		g.piggy = append(g.piggy, Delta{ID: target, State: st, Inc: inc})
	}
	g.piggy = g.ml.AppendPiggyback(g.piggy, g.cfg.PiggybackLimit)
	g.buf = appendMessage(g.buf[:0], msgPing, g.cfg.Self, "", g.piggy)
	return target
}

// probe runs the SWIM probe chain for one target: direct ping, then K
// indirect ping-reqs, then suspicion. Owns g.buf/g.reqBuf/g.proxies
// until it releases the probing flag.
func (g *Gossiper) probe(target string) {
	defer g.wg.Done()
	defer g.probing.Store(false)
	url := g.ml.URL(target)
	if url == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	g.cPings.Add(1)
	ack, err := g.send(ctx, url, "/v1/gossip/ping", g.buf)
	cancel()
	if err == nil {
		g.cAcks.Add(1)
		g.applyAll(ack.Deltas)
		if g.ml.Confirm(target) {
			g.notify()
		}
		return
	}
	g.cPingFail.Add(1)

	// Indirect round: ask K proxies to ping the target for us. A
	// partitioned *path* (us↔target) is not a dead node; only a target
	// no proxy can reach earns a suspicion.
	g.proxies = g.proxies[:0]
	g.proxies = g.ml.AppendProbeTargets(g.proxies)
	// Drop the target itself and shuffle.
	for i := 0; i < len(g.proxies); i++ {
		if g.proxies[i] == target {
			g.proxies[i] = g.proxies[len(g.proxies)-1]
			g.proxies = g.proxies[:len(g.proxies)-1]
			break
		}
	}
	for i := len(g.proxies) - 1; i > 0; i-- {
		j := int(g.nextRand() % uint64(i+1))
		g.proxies[i], g.proxies[j] = g.proxies[j], g.proxies[i]
	}
	k := g.cfg.IndirectProbes
	if k > len(g.proxies) {
		k = len(g.proxies)
	}
	if k > 0 {
		g.reqBuf = appendMessage(g.reqBuf[:0], msgPingReq, g.cfg.Self, target, g.piggy)
		confirmed := make(chan bool, k)
		ctx, cancel := context.WithTimeout(context.Background(), 2*g.cfg.ProbeTimeout)
		for i := 0; i < k; i++ {
			proxyURL := g.ml.URL(g.proxies[i])
			if proxyURL == "" {
				confirmed <- false
				continue
			}
			g.cfg.Rec.Add("fleet.gossip.pingreq.sent", 1)
			go func(u string) {
				ack, err := g.send(ctx, u, "/v1/gossip/ping-req", g.reqBuf)
				if err == nil {
					g.applyAll(ack.Deltas)
				}
				confirmed <- err == nil
			}(proxyURL)
		}
		ok := false
		for i := 0; i < k; i++ {
			if <-confirmed {
				ok = true
			}
		}
		cancel()
		if ok {
			if g.ml.Confirm(target) {
				g.notify()
			}
			return
		}
	}

	if _, suspected := g.ml.Suspect(target); suspected {
		g.cfg.Rec.Add("fleet.gossip.suspects", 1)
	}
}

// send posts one gossip message and decodes the ack. The chaos injector
// sits on this path: a drop suppresses the send entirely (the failure
// mode of a lossy network), a delay stalls it.
func (g *Gossiper) send(ctx context.Context, base, path string, body []byte) (*message, error) {
	if g.cfg.Chaos.Fire(FaultGossipDrop) {
		g.cfg.Rec.Add("fleet.gossip.drops", 1)
		return nil, errDropped
	}
	if d := g.cfg.Chaos.Latency(FaultGossipDelay); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("gossip: %s%s: status %d", base, path, resp.StatusCode)
	}
	var m message
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("gossip: decoding ack from %s: %w", base, err)
	}
	return &m, nil
}

// applyAll merges received deltas and fires OnUpdate once if placement
// changed.
func (g *Gossiper) applyAll(deltas []Delta) {
	changed := false
	for _, d := range deltas {
		pc, refuted := g.ml.Apply(d)
		if pc {
			changed = true
		}
		if refuted {
			g.cfg.Rec.Add("fleet.gossip.refutations", 1)
		}
		if d.State == StateLeft {
			g.cfg.Rec.Add("fleet.gossip.leaves", 1)
		}
	}
	g.cfg.Rec.Add("fleet.gossip.deltas.applied", int64(len(deltas)))
	if changed {
		g.notify()
	}
}

// notify pushes the new placement to OnUpdate. Serialized, and the
// placement is read under the same lock, so updates cannot be delivered
// out of order with respect to each other.
func (g *Gossiper) notify() {
	g.staleSched.Store(true)
	if g.cfg.OnUpdate == nil {
		return
	}
	g.notifyMu.Lock()
	defer g.notifyMu.Unlock()
	epoch, urls := g.ml.Placement()
	g.cfg.OnUpdate(epoch, urls)
}

// Handler returns the gossip endpoints, mounted by the router under
// /v1/gossip/.
func (g *Gossiper) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/gossip/ping", g.handlePing)
	mux.HandleFunc("POST /v1/gossip/ping-req", g.handlePingReq)
	mux.HandleFunc("POST /v1/gossip/join", g.handleJoin)
	return mux
}

// decode reads one message from a request body.
func decode(r *http.Request) (*message, error) {
	var m message
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ackWith writes a 200 ack carrying this node's self delta plus queued
// piggyback — the heartbeat every exchange doubles as, and the channel a
// refutation rides back on.
func (g *Gossiper) ackWith(w http.ResponseWriter, extra []Delta) {
	deltas := make([]Delta, 0, 1+len(extra)+g.cfg.PiggybackLimit)
	deltas = append(deltas, g.ml.SelfDelta())
	deltas = append(deltas, extra...)
	deltas = g.ml.AppendPiggyback(deltas, len(deltas)+g.cfg.PiggybackLimit)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(message{T: msgAck, From: g.cfg.Self, Deltas: deltas})
}

func (g *Gossiper) handlePing(w http.ResponseWriter, r *http.Request) {
	m, err := decode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g.applyAll(m.Deltas)
	g.ackWith(w, nil)
}

// handlePingReq proxies a probe: the origin could not reach the target
// directly, so it asks this node to try. 200 means the target acked
// through us; 502 means we could not reach it either.
func (g *Gossiper) handlePingReq(w http.ResponseWriter, r *http.Request) {
	m, err := decode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g.applyAll(m.Deltas)
	g.cfg.Rec.Add("fleet.gossip.pingreq.relayed", 1)
	if m.Target == "" || m.Target == g.cfg.Self {
		http.Error(w, "gossip: ping-req without a remote target", http.StatusBadRequest)
		return
	}
	url := g.ml.URL(m.Target)
	if url == "" {
		http.Error(w, "gossip: unknown ping-req target", http.StatusBadGateway)
		return
	}
	body, err := json.Marshal(message{T: msgPing, From: g.cfg.Self, Deltas: []Delta{g.ml.SelfDelta()}})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProbeTimeout)
	defer cancel()
	ack, err := g.send(ctx, url, "/v1/gossip/ping", body)
	if err != nil {
		http.Error(w, fmt.Sprintf("gossip: relay to %s failed: %v", m.Target, err), http.StatusBadGateway)
		return
	}
	g.applyAll(ack.Deltas)
	g.ackWith(w, nil)
}

// handleJoin serves a membership snapshot to a joining node. The joiner
// is deliberately NOT added to membership here: it stays outside
// placement until it has warmed its arc and Announces itself.
func (g *Gossiper) handleJoin(w http.ResponseWriter, r *http.Request) {
	m, err := decode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	g.applyAll(m.Deltas)
	g.cfg.Rec.Add("fleet.gossip.joins", 1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(message{T: msgAck, From: g.cfg.Self, Deltas: g.ml.Snapshot()})
}

// retry runs f with full-jitter exponential backoff until it succeeds,
// attempts run out, or ctx expires. Jitter is uniform in (0, base·2ⁱ],
// the "full jitter" scheme — under churn many nodes retry at once, and
// synchronized retries are how thundering herds happen.
func (g *Gossiper) retry(ctx context.Context, attempts int, base, max time.Duration, f func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = f(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		backoff := base << uint(i)
		if backoff > max {
			backoff = max
		}
		sleep := time.Duration(g.nextRand() % uint64(backoff))
		select {
		case <-time.After(sleep + time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}

// Join fetches a membership snapshot from the first reachable seed URL,
// retrying with backoff across seeds. After Join the node knows the
// fleet but the fleet does not place the node — warm up, then Announce.
func (g *Gossiper) Join(ctx context.Context, seeds []string) error {
	if len(seeds) == 0 {
		return errors.New("gossip: Join needs at least one seed URL")
	}
	body, err := json.Marshal(message{T: msgJoin, From: g.cfg.Self, URL: g.cfg.URL})
	if err != nil {
		return err
	}
	i := int(g.nextRand() % uint64(len(seeds)))
	return g.retry(ctx, 4*len(seeds), 50*time.Millisecond, 2*time.Second, func() error {
		seed := seeds[i%len(seeds)]
		i++
		sctx, cancel := context.WithTimeout(ctx, 2*g.cfg.ProbeTimeout)
		defer cancel()
		snap, err := g.send(sctx, seed, "/v1/gossip/join", body)
		if err != nil {
			return err
		}
		g.applyAll(snap.Deltas)
		return nil
	})
}

// Announce moves this node into placement and pushes the fact at up to
// three peers immediately — the rest of the fleet learns within a
// gossip round or two.
func (g *Gossiper) Announce(ctx context.Context) {
	g.ml.Announce()
	g.notify()
	g.broadcast(ctx, 3)
}

// Leave marks this node gracefully left and broadcasts the departure.
// The caller (the router's drain path) hands off cache keys and drains
// jobs after this returns; the leaver keeps answering gossip — as a
// "left" member — until the process exits.
func (g *Gossiper) Leave(ctx context.Context) {
	g.ml.Leave()
	g.cfg.Rec.Add("fleet.gossip.leaves", 1)
	g.notify()
	g.broadcast(ctx, 3)
}

// broadcast pings up to n placed peers right now (with retries), rather
// than waiting for the tick loop — joins and leaves deserve eager
// dissemination.
func (g *Gossiper) broadcast(ctx context.Context, n int) {
	ids := g.ml.AppendProbeTargets(nil)
	for i := len(ids) - 1; i > 0; i-- {
		j := int(g.nextRand() % uint64(i+1))
		ids[i], ids[j] = ids[j], ids[i]
	}
	if n > len(ids) {
		n = len(ids)
	}
	deltas := g.ml.AppendPiggyback([]Delta{g.ml.SelfDelta()}, g.cfg.PiggybackLimit)
	body, err := json.Marshal(message{T: msgPing, From: g.cfg.Self, Deltas: deltas})
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		url := g.ml.URL(ids[i])
		if url == "" {
			continue
		}
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			g.retry(ctx, 3, 25*time.Millisecond, 500*time.Millisecond, func() error {
				sctx, cancel := context.WithTimeout(ctx, 2*g.cfg.ProbeTimeout)
				defer cancel()
				ack, err := g.send(sctx, u, "/v1/gossip/ping", body)
				if err != nil {
					return err
				}
				g.applyAll(ack.Deltas)
				return nil
			})
		}(url)
	}
	wg.Wait()
}
