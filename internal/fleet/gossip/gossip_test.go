package gossip

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jvmgc/internal/telemetry"
)

// stallGate wraps a node's gossip handler so a test can simulate a
// stop-the-world stall: while stalled, every inbound request blocks
// until the gate reopens (or the request gives up) — exactly how a
// long GC pause looks from the network.
type stallGate struct {
	h       http.Handler
	mu      sync.Mutex
	blocked chan struct{} // non-nil while stalled
}

func (g *stallGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	ch := g.blocked
	g.mu.Unlock()
	if ch != nil {
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
	g.h.ServeHTTP(w, r)
}

func (g *stallGate) stall() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked == nil {
		g.blocked = make(chan struct{})
	}
}

func (g *stallGate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blocked != nil {
		close(g.blocked)
		g.blocked = nil
	}
}

// testCluster wires n gossipers over real listeners.
type testCluster struct {
	ids   []string
	gs    map[string]*Gossiper
	gates map[string]*stallGate
	recs  map[string]*telemetry.Recorder
	urls  map[string]string
	srvs  []*httptest.Server
}

func startCluster(t *testing.T, ids []string, interval, suspect time.Duration) *testCluster {
	t.Helper()
	c := &testCluster{
		ids:   ids,
		gs:    make(map[string]*Gossiper),
		gates: make(map[string]*stallGate),
		recs:  make(map[string]*telemetry.Recorder),
		urls:  make(map[string]string),
	}
	for _, id := range ids {
		gate := &stallGate{}
		ts := httptest.NewServer(gate)
		c.gates[id] = gate
		c.urls[id] = ts.URL
		c.srvs = append(c.srvs, ts)
	}
	for _, id := range ids {
		rec := telemetry.New(telemetry.Config{})
		g, err := New(Config{
			Self:           id,
			URL:            c.urls[id],
			Peers:          c.urls,
			Interval:       interval,
			SuspectTimeout: suspect,
			Rec:            rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.gates[id].h = g.Handler()
		c.gs[id] = g
		c.recs[id] = rec
	}
	t.Cleanup(func() {
		// Reopen every gate first: a stalled handler otherwise keeps its
		// connection active and wedges the server Close below.
		for _, gate := range c.gates {
			gate.release()
		}
		for _, g := range c.gs {
			g.Close()
		}
		for _, ts := range c.srvs {
			ts.Close()
		}
	})
	return c
}

// start launches the tick loop on the given nodes. A node left
// un-started still answers gossip (its handler is live) but originates
// nothing — the shape of a process whose gossip thread is wedged.
func (c *testCluster) start(ids ...string) {
	for _, id := range ids {
		c.gs[id].Start()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStallRefutedNotDeclaredDead is the failure detector's acceptance
// test: a node stalled (as a long GC pause would) for less than the
// suspicion window is suspected — and then refutes the suspicion with a
// higher incarnation instead of being declared dead. Zero deaths, the
// stalled node ends alive everywhere, and the refutation is observable
// in its incarnation and counters. Run under -race in CI.
func TestStallRefutedNotDeclaredDead(t *testing.T) {
	c := startCluster(t, []string{"a", "b", "c"}, 20*time.Millisecond, 2*time.Second)
	c.start("a", "b", "c")

	// Stall c for ~1/6 of the suspicion window: long enough that direct
	// and indirect probes both fail, far too short to die.
	c.gates["c"].stall()
	waitFor(t, 3*time.Second, "c to be suspected", func() bool {
		for _, id := range []string{"a", "b"} {
			if st, _, ok := c.gs[id].Memberlist().State("c"); ok && st == StateSuspect {
				return true
			}
		}
		return false
	})
	c.gates["c"].release()

	// The suspicion must reach c (carried on the next direct probe) and
	// be refuted: c re-announces at a higher incarnation.
	waitFor(t, 5*time.Second, "c to refute the suspicion", func() bool {
		return c.gs["c"].Memberlist().Refutations() >= 1
	})
	waitFor(t, 5*time.Second, "c to be alive everywhere", func() bool {
		for _, id := range []string{"a", "b"} {
			st, inc, ok := c.gs[id].Memberlist().State("c")
			if !ok || st != StateAlive || inc < 1 {
				return false
			}
		}
		return true
	})

	for _, id := range c.ids {
		if d := c.gs[id].Deaths(); d != 0 {
			t.Errorf("node %s declared %d deaths; a sub-window stall must never kill", id, d)
		}
		if v := c.recs[id].Counter("fleet.gossip.deaths"); v != 0 {
			t.Errorf("node %s fleet.gossip.deaths = %d, want 0", id, v)
		}
	}
	if inc := c.gs["c"].Memberlist().Incarnation(); inc < 1 {
		t.Errorf("c incarnation = %d, want >= 1 (the refutation mints it)", inc)
	}
	if v := c.recs["c"].Counter("fleet.gossip.refutations"); v < 1 {
		t.Errorf("c fleet.gossip.refutations = %d, want >= 1", v)
	}
	// All three still agree on placement.
	e := c.gs["a"].Epoch()
	for _, id := range c.ids {
		if got := c.gs[id].Epoch(); got != e {
			t.Errorf("node %s epoch %x != a's %x after recovery", id, got, e)
		}
		if _, urls := c.gs[id].Memberlist().Placement(); len(urls) != 3 {
			t.Errorf("node %s placement has %d members, want 3", id, len(urls))
		}
	}
}

// TestDeathAndRecovery: a node that stops answering for longer than
// the suspicion window is declared dead and evicted from placement —
// and the recovery probe brings it back once it answers again, because
// the probe carries the death claim for the node to refute. The victim
// never runs a tick loop: a node whose own gossip still works can
// always refute an inbound-only stall (TestStallRefutedNotDeclaredDead
// covers that), so death requires full unresponsiveness.
func TestDeathAndRecovery(t *testing.T) {
	c := startCluster(t, []string{"a", "b", "c"}, 15*time.Millisecond, 150*time.Millisecond)
	c.start("a", "b")

	c.gates["c"].stall()
	waitFor(t, 5*time.Second, "c to be declared dead", func() bool {
		st, _, ok := c.gs["a"].Memberlist().State("c")
		if !ok || st != StateDead {
			return false
		}
		st, _, ok = c.gs["b"].Memberlist().State("c")
		return ok && st == StateDead
	})
	for _, id := range []string{"a", "b"} {
		if _, urls := c.gs[id].Memberlist().Placement(); len(urls) != 2 {
			t.Errorf("node %s placement has %d members after death, want 2", id, len(urls))
		}
	}

	// Revival: c answers again; a recovery probe tells it the fleet
	// thinks it is dead; c out-bids the claim and rejoins.
	c.gates["c"].release()
	waitFor(t, 10*time.Second, "c to rejoin placement", func() bool {
		for _, id := range []string{"a", "b"} {
			st, _, ok := c.gs[id].Memberlist().State("c")
			if !ok || st != StateAlive {
				return false
			}
		}
		return true
	})
	if refs := c.gs["c"].Memberlist().Refutations(); refs < 1 {
		t.Errorf("c refutations = %d, want >= 1 (the death claim must be out-bid)", refs)
	}
}

// TestJoinAnnounceLeaveLifecycle walks the full membership choreography
// over live gossip: a joiner fetches a snapshot without entering
// placement, announces itself in, and later leaves gracefully —
// distinguishable from a death in every survivor's memberlist.
func TestJoinAnnounceLeaveLifecycle(t *testing.T) {
	ctx := context.Background()
	c := startCluster(t, []string{"a", "b"}, 15*time.Millisecond, 500*time.Millisecond)
	c.start("a", "b")

	gate := &stallGate{}
	ts := httptest.NewServer(gate)
	defer ts.Close()
	joiner, err := New(Config{
		Self:     "j",
		URL:      ts.URL,
		Joining:  true,
		Interval: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	gate.h = joiner.Handler()
	defer joiner.Close()

	if err := joiner.Join(ctx, []string{c.urls["a"]}); err != nil {
		t.Fatal(err)
	}
	// Joined but not announced: the joiner knows the fleet, the fleet
	// does not place the joiner.
	if _, urls := joiner.Memberlist().Placement(); len(urls) != 2 {
		t.Fatalf("joiner placement before announce = %v, want the 2 seeds only", urls)
	}
	joiner.Start()

	joiner.Announce(ctx)
	waitFor(t, 5*time.Second, "all nodes to place the joiner", func() bool {
		for _, id := range []string{"a", "b"} {
			if _, urls := c.gs[id].Memberlist().Placement(); len(urls) != 3 {
				return false
			}
		}
		_, urls := joiner.Memberlist().Placement()
		return len(urls) == 3
	})
	waitFor(t, 5*time.Second, "epochs to converge after join", func() bool {
		e := joiner.Epoch()
		return c.gs["a"].Epoch() == e && c.gs["b"].Epoch() == e
	})

	joiner.Leave(ctx)
	waitFor(t, 5*time.Second, "survivors to see the graceful leave", func() bool {
		for _, id := range []string{"a", "b"} {
			st, _, ok := c.gs[id].Memberlist().State("j")
			if !ok || st != StateLeft {
				return false
			}
		}
		return true
	})
	for _, id := range []string{"a", "b"} {
		if d := c.gs[id].Deaths(); d != 0 {
			t.Errorf("node %s counted %d deaths for a graceful leave", id, d)
		}
		if _, urls := c.gs[id].Memberlist().Placement(); len(urls) != 2 {
			t.Errorf("node %s placement has %d members after leave, want 2", id, len(urls))
		}
	}
}

// TestOnUpdateDeliversPlacement: membership changes reach the router
// callback with the right epoch and URL set.
func TestOnUpdateDeliversPlacement(t *testing.T) {
	var gotEpoch atomic.Uint64
	var mu sync.Mutex
	var gotURLs map[string]string
	g, err := New(Config{
		Self: "a",
		URL:  "http://a",
		OnUpdate: func(epoch uint64, urls map[string]string) {
			gotEpoch.Store(epoch)
			mu.Lock()
			gotURLs = urls
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	g.applyAll([]Delta{{ID: "b", URL: "http://b", State: StateAlive, Inc: 0}})
	mu.Lock()
	urls := gotURLs
	mu.Unlock()
	if len(urls) != 2 || urls["b"] != "http://b" || urls["a"] != "http://a" {
		t.Fatalf("OnUpdate urls = %v, want a+b", urls)
	}
	if gotEpoch.Load() != g.Epoch() {
		t.Fatalf("OnUpdate epoch %x != memberlist epoch %x", gotEpoch.Load(), g.Epoch())
	}
}

// BenchmarkGossipTick pins the tick's synchronous path — suspect
// expiry, probe-target selection, and ping encoding — at zero
// allocations per period. The network round runs on a separate
// goroutine and is not part of the tick budget.
func BenchmarkGossipTick(b *testing.B) {
	peers := map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
		"d": "http://d", "e": "http://e",
	}
	g, err := New(Config{Self: "a", URL: "http://a", Peers: peers})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	// Drain the boot-time piggyback queue so steady state is measured.
	for i := 0; i < 64; i++ {
		g.ml.AppendPiggyback(nil, 16)
	}
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ml.ExpireSuspects(now, time.Minute)
		if target := g.prepareTick(uint64(i + 1)); target == "" {
			b.Fatal("no probe target")
		}
	}
}
