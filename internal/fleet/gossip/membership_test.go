package gossip

import (
	"testing"
	"time"
)

func TestDeltaSupersedes(t *testing.T) {
	cases := []struct {
		d        Delta
		st       State
		inc      uint64
		want     bool
		describe string
	}{
		{Delta{State: StateSuspect, Inc: 0}, StateAlive, 0, true, "suspect beats alive at same inc"},
		{Delta{State: StateAlive, Inc: 0}, StateSuspect, 0, false, "alive loses to suspect at same inc"},
		{Delta{State: StateAlive, Inc: 1}, StateSuspect, 0, true, "higher inc beats any state"},
		{Delta{State: StateDead, Inc: 0}, StateAlive, 1, false, "lower inc never wins"},
		{Delta{State: StateDead, Inc: 2}, StateSuspect, 2, true, "dead beats suspect"},
		{Delta{State: StateLeft, Inc: 2}, StateDead, 2, true, "left beats dead"},
		{Delta{State: StateAlive, Inc: 3}, StateAlive, 3, false, "identical claim is idempotent"},
	}
	for _, c := range cases {
		if got := c.d.supersedes(c.st, c.inc); got != c.want {
			t.Errorf("%s: supersedes = %v, want %v", c.describe, got, c.want)
		}
	}
}

func TestRefutationBumpsIncarnation(t *testing.T) {
	ml := NewMemberlist("a", "http://a", true)

	// A suspicion about self at the current incarnation must be out-bid.
	_, refuted := ml.Apply(Delta{ID: "a", State: StateSuspect, Inc: 0})
	if !refuted {
		t.Fatal("suspicion about self at current incarnation was not refuted")
	}
	if inc := ml.Incarnation(); inc != 1 {
		t.Fatalf("incarnation after refutation = %d, want 1", inc)
	}
	if ml.Refutations() != 1 {
		t.Fatalf("refutations = %d, want 1", ml.Refutations())
	}
	d := ml.SelfDelta()
	if d.State != StateAlive || d.Inc != 1 {
		t.Fatalf("self delta after refutation = %+v, want alive@1", d)
	}

	// A death claim at a higher incarnation is out-bid past it.
	if _, refuted := ml.Apply(Delta{ID: "a", State: StateDead, Inc: 5}); !refuted {
		t.Fatal("death claim about self was not refuted")
	}
	if inc := ml.Incarnation(); inc != 6 {
		t.Fatalf("incarnation after death refutation = %d, want 6", inc)
	}

	// A stale claim below the current incarnation is ignored.
	if _, refuted := ml.Apply(Delta{ID: "a", State: StateSuspect, Inc: 2}); refuted {
		t.Fatal("stale suspicion (inc below self) should not trigger a refutation")
	}
}

func TestLeftNodeDoesNotRefute(t *testing.T) {
	ml := NewMemberlist("a", "http://a", true)
	ml.Leave()
	if _, refuted := ml.Apply(Delta{ID: "a", State: StateDead, Inc: 99}); refuted {
		t.Fatal("a gracefully left node must not refute claims about itself")
	}
	if !ml.Left() {
		t.Fatal("Left() = false after Leave")
	}
}

func TestSuspectExpiryDeclaresDeath(t *testing.T) {
	ml := NewMemberlist("a", "http://a", true)
	ml.Apply(Delta{ID: "b", URL: "http://b", State: StateAlive, Inc: 0})

	if _, ok := ml.Suspect("b"); !ok {
		t.Fatal("could not suspect a live member")
	}
	// Suspects stay in placement: evicting on suspicion would churn the
	// ring for every long GC pause.
	if _, urls := ml.Placement(); len(urls) != 2 {
		t.Fatalf("placement dropped a suspect: %v", urls)
	}

	// Before the timeout: no deaths.
	if deaths, _ := ml.ExpireSuspects(time.Now(), time.Hour); len(deaths) != 0 {
		t.Fatalf("premature deaths: %v", deaths)
	}
	// After the timeout: dead and out of placement.
	deaths, changed := ml.ExpireSuspects(time.Now().Add(time.Hour), time.Minute)
	if len(deaths) != 1 || deaths[0].ID != "b" || deaths[0].State != StateDead {
		t.Fatalf("deaths = %v, want one dead(b)", deaths)
	}
	if !changed {
		t.Fatal("death did not report a placement change")
	}
	if _, urls := ml.Placement(); len(urls) != 1 {
		t.Fatalf("placement still holds the dead member: %v", urls)
	}
}

func TestConfirmClearsSuspicionWithoutIncBump(t *testing.T) {
	ml := NewMemberlist("a", "http://a", true)
	ml.Apply(Delta{ID: "b", URL: "http://b", State: StateAlive, Inc: 3})
	ml.Suspect("b")

	ml.Confirm("b")
	st, inc, _ := ml.State("b")
	if st != StateAlive || inc != 3 {
		t.Fatalf("after Confirm: state=%v inc=%d, want alive@3 (a direct ack may not mint incarnations)", st, inc)
	}
	// Nothing expires afterwards.
	if deaths, _ := ml.ExpireSuspects(time.Now().Add(time.Hour), time.Minute); len(deaths) != 0 {
		t.Fatalf("confirmed member still expired: %v", deaths)
	}
}

func TestPiggybackBudgetDrains(t *testing.T) {
	ml := NewMemberlist("a", "http://a", true)
	ml.Apply(Delta{ID: "b", URL: "http://b", State: StateAlive, Inc: 0})

	budget := retransmitBudget(2)
	total := 0
	for i := 0; i < budget+4; i++ {
		got := ml.AppendPiggyback(nil, 8)
		total += len(got)
	}
	if total != budget {
		t.Fatalf("delta rode %d messages, budget is %d", total, budget)
	}
}

// splitmix steps a deterministic rng for the property test.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestConvergenceProperty is the CRDT law the whole design rests on: two
// nodes that apply the same set of membership deltas — split into
// disjoint halves first, in different orders, with duplicates — converge
// to identical placement sets and identical epochs once they exchange
// snapshots. 200 randomized trials with a fixed seed.
func TestConvergenceProperty(t *testing.T) {
	ids := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	states := []State{StateAlive, StateSuspect, StateDead, StateLeft}
	seed := uint64(0xc0ffee)

	for trial := 0; trial < 200; trial++ {
		// Generate a random delta stream over the ID space.
		n := 4 + int(splitmix(&seed)%12)
		deltas := make([]Delta, n)
		for i := range deltas {
			deltas[i] = Delta{
				ID:    ids[splitmix(&seed)%uint64(len(ids))],
				URL:   "http://x",
				State: states[splitmix(&seed)%uint64(len(states))],
				Inc:   splitmix(&seed) % 4,
			}
		}

		a := NewMemberlist("A", "http://A", true)
		b := NewMemberlist("B", "http://B", true)

		// Disjoint halves, shuffled independently, with duplication.
		half := n / 2
		applyShuffled := func(ml *Memberlist, ds []Delta) {
			perm := make([]Delta, len(ds))
			copy(perm, ds)
			for i := len(perm) - 1; i > 0; i-- {
				j := int(splitmix(&seed) % uint64(i+1))
				perm[i], perm[j] = perm[j], perm[i]
			}
			for _, d := range perm {
				ml.Apply(d)
				if splitmix(&seed)%3 == 0 {
					ml.Apply(d) // idempotence under duplication
				}
			}
		}
		applyShuffled(a, deltas[:half])
		applyShuffled(b, deltas[half:])

		// Anti-entropy: exchange full snapshots both ways, twice (a
		// snapshot can carry claims that unlock each other).
		for round := 0; round < 2; round++ {
			for _, d := range a.Snapshot() {
				b.Apply(d)
			}
			for _, d := range b.Snapshot() {
				a.Apply(d)
			}
		}

		epochA, urlsA := a.Placement()
		epochB, urlsB := b.Placement()
		// Self is always in one's own placement and arrives at the other
		// via the snapshot exchange; both should now see both selves plus
		// identical registers for everything else.
		if epochA != epochB {
			t.Fatalf("trial %d: epochs diverged: %x vs %x\nA=%v\nB=%v",
				trial, epochA, epochB, urlsA, urlsB)
		}
		if len(urlsA) != len(urlsB) {
			t.Fatalf("trial %d: placement sets diverged: %v vs %v", trial, urlsA, urlsB)
		}
		for id := range urlsA {
			if _, ok := urlsB[id]; !ok {
				t.Fatalf("trial %d: %s placed on A but not B", trial, id)
			}
		}
		// Per-member registers agree exactly.
		for _, id := range ids {
			stA, incA, okA := a.State(id)
			stB, incB, okB := b.State(id)
			if okA != okB || (okA && (stA != stB || incA != incB)) {
				t.Fatalf("trial %d: register %s diverged: (%v,%d,%v) vs (%v,%d,%v)",
					trial, id, stA, incA, okA, stB, incB, okB)
			}
		}
	}
}

// TestEpochIsContentDerived: the epoch depends only on the placement
// set, so two nodes with the same membership agree on it without any
// coordination — and it changes whenever placement changes.
func TestEpochIsContentDerived(t *testing.T) {
	a := NewMemberlist("A", "http://A", true)
	b := NewMemberlist("B", "http://B", true)
	for _, ml := range []*Memberlist{a, b} {
		ml.Apply(Delta{ID: "A", URL: "http://A", State: StateAlive, Inc: 0})
		ml.Apply(Delta{ID: "B", URL: "http://B", State: StateAlive, Inc: 0})
		ml.Apply(Delta{ID: "C", URL: "http://C", State: StateAlive, Inc: 0})
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("same placement, different epochs: %x vs %x", a.Epoch(), b.Epoch())
	}
	before := a.Epoch()
	a.Apply(Delta{ID: "C", State: StateDead, Inc: 0})
	if a.Epoch() == before {
		t.Fatal("placement changed but epoch did not")
	}
	b.Apply(Delta{ID: "C", State: StateDead, Inc: 0})
	if a.Epoch() != b.Epoch() {
		t.Fatal("epochs diverged after applying the same death")
	}
}
