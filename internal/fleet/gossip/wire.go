package gossip

import "strconv"

// The gossip wire protocol: every message — ping, ack, ping-req, join —
// is one small JSON object, and every message carries membership deltas,
// because piggybacking is how SWIM disseminates state without a
// broadcast round. The hot direction (the once-per-tick ping this node
// originates) is hand-encoded by appending into a reused buffer so a
// gossip tick allocates nothing; the receive direction decodes with
// encoding/json, where an allocation per incoming message is fine.

// Message types.
const (
	msgPing    = "ping"
	msgAck     = "ack"
	msgPingReq = "ping-req"
	msgJoin    = "join"
)

// message is a decoded gossip message.
type message struct {
	T      string  `json:"t"`
	From   string  `json:"from"`
	Target string  `json:"target,omitempty"` // ping-req only: who to probe
	URL    string  `json:"url,omitempty"`    // join only: the joiner's base URL
	Deltas []Delta `json:"deltas,omitempty"`
}

// appendMessage hand-encodes a message into buf and returns the extended
// slice. The output is plain JSON, byte-compatible with the message
// struct's tags, so receivers decode it with encoding/json.
func appendMessage(buf []byte, t, from, target string, deltas []Delta) []byte {
	buf = append(buf, `{"t":`...)
	buf = strconv.AppendQuote(buf, t)
	buf = append(buf, `,"from":`...)
	buf = strconv.AppendQuote(buf, from)
	if target != "" {
		buf = append(buf, `,"target":`...)
		buf = strconv.AppendQuote(buf, target)
	}
	buf = append(buf, `,"deltas":[`...)
	for i := range deltas {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendDelta(buf, deltas[i])
	}
	buf = append(buf, ']', '}')
	return buf
}

// appendDelta hand-encodes one membership delta.
func appendDelta(buf []byte, d Delta) []byte {
	buf = append(buf, `{"id":`...)
	buf = strconv.AppendQuote(buf, d.ID)
	if d.URL != "" {
		buf = append(buf, `,"url":`...)
		buf = strconv.AppendQuote(buf, d.URL)
	}
	buf = append(buf, `,"state":`...)
	buf = strconv.AppendUint(buf, uint64(d.State), 10)
	buf = append(buf, `,"inc":`...)
	buf = strconv.AppendUint(buf, d.Inc, 10)
	buf = append(buf, '}')
	return buf
}
