// Package gossip is the fleet's live-membership layer: a SWIM-style
// failure detector and membership state machine that lets a fleet of
// gclabd nodes reconfigure itself — nodes joining, leaving gracefully,
// or dying — while the fleet keeps serving traffic.
//
// Health spreads epidemically instead of by on-demand probing: each
// node periodically pings one random peer, falls back to indirect
// ping-reqs through K proxies when the direct ping times out, and
// piggybacks membership deltas on every message. A peer that misses
// both probes becomes *suspect*, not dead: the suspicion is gossiped,
// reaches the suspect itself, and a merely-slow node (the canonical
// confusion: a long GC pause, exactly what this laboratory simulates
// all day) refutes it by re-announcing itself with a higher
// incarnation number. Only a suspicion that survives the full suspect
// timeout unrefuted becomes a death declaration.
//
// The membership list is a conflict-free register per node: a delta
// (state, incarnation) supersedes another iff its incarnation is
// higher, or equal with a more damning state (alive < suspect < dead <
// left). Merging is commutative, associative and idempotent, so any
// two nodes that have seen the same set of deltas — in any order, with
// any duplication — hold identical membership and therefore identical
// placement rings. The placement epoch is a hash of the membership's
// placement set, giving every node the same epoch number for the same
// ring without coordination.
package gossip

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// State is a member's lifecycle state.
type State uint8

const (
	// StateAlive: the member answers probes (or its suspicion was
	// refuted). In the placement ring.
	StateAlive State = iota
	// StateSuspect: the member missed a direct and K indirect probes.
	// Still in the placement ring — a suspect is more often a long GC
	// pause than a corpse, and evicting it would churn its arc's keys
	// for nothing when it refutes.
	StateSuspect
	// StateDead: the suspicion survived the full suspect timeout
	// unrefuted. Out of the ring; its arc slides to its successors.
	StateDead
	// StateLeft: the member announced a graceful leave. Out of the
	// ring, but distinguished from dead so an operator (and the
	// leave-vs-kill experiment) can tell a drain from a crash.
	StateLeft
)

// String renders the state for /fleet/nodes and the gctop panel.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// rank orders states of equal incarnation: a more damning claim wins,
// which is what makes the per-member register a CRDT.
func (s State) rank() int { return int(s) }

// InPlacement reports whether a member in this state owns ring arcs.
func (s State) InPlacement() bool { return s == StateAlive || s == StateSuspect }

// Delta is one gossiped membership claim: "node ID is in state State at
// incarnation Inc". Alive deltas carry the member's URL so a node
// learned through gossip is immediately routable.
type Delta struct {
	ID    string `json:"id"`
	URL   string `json:"url,omitempty"`
	State State  `json:"state"`
	Inc   uint64 `json:"inc"`
}

// supersedes reports whether d beats a known (state, inc) register.
func (d Delta) supersedes(state State, inc uint64) bool {
	if d.Inc != inc {
		return d.Inc > inc
	}
	return d.State.rank() > state.rank()
}

// Member is one row of the membership snapshot.
type Member struct {
	ID          string `json:"id"`
	URL         string `json:"url"`
	State       State  `json:"-"`
	StateName   string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
}

// member is the internal register for one peer.
type member struct {
	url         string
	state       State
	inc         uint64
	suspectedAt time.Time // local clock; zero unless state == StateSuspect
}

// queued is one delta awaiting piggyback, with its remaining
// retransmission budget (each delta rides ~O(log n) messages, the
// classic epidemic-dissemination setting).
type queued struct {
	d    Delta
	left int
}

// Memberlist is the membership state machine: the per-node registers,
// the piggyback queue, and this node's own identity and incarnation.
// All methods are safe for concurrent use.
type Memberlist struct {
	mu      sync.Mutex
	self    string
	selfURL string
	selfInc uint64
	// selfState is StateAlive once announced, StateLeft after a
	// graceful leave. An un-announced node (a joiner warming up) is
	// tracked with announced=false and excluded from placement until
	// Announce.
	selfState State
	announced bool

	members map[string]*member // peers; never contains self

	queue []queued

	// placementIDs is the sorted placement set (reused between calls;
	// rebuilt only when stale). epoch is its hash.
	placementIDs []string
	placementOK  bool
	epoch        uint64

	refutations uint64
}

// NewMemberlist builds the state machine for one node. announced=false
// starts the node outside placement (the join path: warm up first,
// Announce later); true starts it alive (the static-seed path, where
// every node boots with the same membership).
func NewMemberlist(self, selfURL string, announced bool) *Memberlist {
	return &Memberlist{
		self:      self,
		selfURL:   selfURL,
		selfState: StateAlive,
		announced: announced,
		members:   make(map[string]*member),
	}
}

// Self returns this node's ID.
func (ml *Memberlist) Self() string { return ml.self }

// Incarnation returns this node's current incarnation number.
func (ml *Memberlist) Incarnation() uint64 {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	return ml.selfInc
}

// Refutations counts how many times this node refuted a suspicion or
// death claim about itself.
func (ml *Memberlist) Refutations() uint64 {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	return ml.refutations
}

// SelfDelta returns this node's own current claim — piggybacked on
// every outgoing message, which is both the steady-state heartbeat and
// the refutation carrier.
func (ml *Memberlist) SelfDelta() Delta {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	return ml.selfDeltaLocked()
}

func (ml *Memberlist) selfDeltaLocked() Delta {
	return Delta{ID: ml.self, URL: ml.selfURL, State: ml.selfState, Inc: ml.selfInc}
}

// retransmitBudget is how many more messages a fresh delta rides:
// 2·ceil(log2(n+2))+2, the epidemic-broadcast setting that reaches n
// nodes with high probability.
func retransmitBudget(n int) int {
	return 2*bits.Len(uint(n+1)) + 2
}

// push queues a delta for piggyback, replacing any queued delta it
// supersedes. Caller holds ml.mu.
func (ml *Memberlist) push(d Delta) {
	for i := range ml.queue {
		if ml.queue[i].d.ID == d.ID {
			if d.supersedes(ml.queue[i].d.State, ml.queue[i].d.Inc) {
				ml.queue[i] = queued{d: d, left: retransmitBudget(len(ml.members) + 1)}
			}
			return
		}
	}
	ml.queue = append(ml.queue, queued{d: d, left: retransmitBudget(len(ml.members) + 1)})
}

// Apply merges one gossiped delta. It reports whether the placement
// set changed (the caller rebuilds rings) and whether the delta was a
// claim about self that this node refuted.
func (ml *Memberlist) Apply(d Delta) (placementChanged, refuted bool) {
	if d.ID == "" {
		return false, false
	}
	ml.mu.Lock()
	defer ml.mu.Unlock()
	return ml.applyLocked(d)
}

func (ml *Memberlist) applyLocked(d Delta) (placementChanged, refuted bool) {
	if d.ID == ml.self {
		// A claim about this node. Suspicion or death at our
		// incarnation (or higher) is refuted by out-bidding it: bump
		// the incarnation past the claim and re-announce. A left node
		// does not refute — the claim is true.
		if ml.selfState == StateLeft {
			return false, false
		}
		if (d.State == StateSuspect || d.State == StateDead) && d.Inc >= ml.selfInc {
			ml.selfInc = d.Inc + 1
			ml.refutations++
			ml.push(ml.selfDeltaLocked())
			return false, true
		}
		return false, false
	}

	m, known := ml.members[d.ID]
	if !known {
		if !d.State.InPlacement() && d.URL == "" {
			// A dead/left claim about a node we never met: remember the
			// register (so a stale alive can't resurrect it) but it
			// carries no placement weight either way.
			ml.members[d.ID] = &member{state: d.State, inc: d.Inc}
			ml.push(d)
			return false, false
		}
		m = &member{url: d.URL, state: d.State, inc: d.Inc}
		if d.State == StateSuspect {
			m.suspectedAt = time.Now()
		}
		ml.members[d.ID] = m
		ml.push(d)
		if d.State.InPlacement() {
			ml.placementOK = false
			return true, false
		}
		return false, false
	}

	if !d.supersedes(m.state, m.inc) {
		return false, false
	}
	wasPlaced := m.state.InPlacement()
	if d.URL != "" {
		m.url = d.URL
	}
	if d.State == StateSuspect && m.state != StateSuspect {
		m.suspectedAt = time.Now()
	}
	m.state, m.inc = d.State, d.Inc
	ml.push(d)
	if wasPlaced != m.state.InPlacement() {
		ml.placementOK = false
		return true, false
	}
	return false, false
}

// Confirm records a successful direct probe of a member: proof of life
// that supersedes a local suspicion at the same incarnation. Unlike a
// refutation it does not bump the incarnation (only the member itself
// may), so a suspicion gossiped at a higher incarnation still wins.
func (ml *Memberlist) Confirm(id string) (placementChanged bool) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	m, ok := ml.members[id]
	if !ok || m.state != StateSuspect {
		return false
	}
	// An ack is direct evidence, stronger than the relayed suspicion it
	// contradicts; clear the suspect clock but keep the register's
	// incarnation so the member's own refutation (inc+1) still
	// propagates to everyone else.
	m.state = StateAlive
	m.suspectedAt = time.Time{}
	return false
}

// Suspect marks a member suspect at its current incarnation (a failed
// probe sequence) and returns the delta to gossip, or ok=false when the
// member is not in a suspectable state.
func (ml *Memberlist) Suspect(id string) (d Delta, ok bool) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	m, known := ml.members[id]
	if !known || m.state != StateAlive {
		return Delta{}, false
	}
	m.state = StateSuspect
	m.suspectedAt = time.Now()
	d = Delta{ID: id, URL: m.url, State: StateSuspect, Inc: m.inc}
	ml.push(d)
	return d, true
}

// ExpireSuspects declares dead every member whose suspicion has
// outlived the timeout, returning the death deltas (nil in the common
// no-deaths case) and whether placement changed.
func (ml *Memberlist) ExpireSuspects(now time.Time, timeout time.Duration) (deaths []Delta, placementChanged bool) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	for id, m := range ml.members {
		if m.state != StateSuspect || m.suspectedAt.IsZero() {
			continue
		}
		if now.Sub(m.suspectedAt) < timeout {
			continue
		}
		m.state = StateDead
		m.suspectedAt = time.Time{}
		d := Delta{ID: id, State: StateDead, Inc: m.inc}
		ml.push(d)
		deaths = append(deaths, d)
	}
	if len(deaths) > 0 {
		ml.placementOK = false
		placementChanged = true
	}
	return deaths, placementChanged
}

// Announce moves this node into placement (the end of a join's warm-up)
// and returns its alive delta to gossip.
func (ml *Memberlist) Announce() Delta {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if !ml.announced {
		ml.announced = true
		ml.placementOK = false
	}
	ml.selfState = StateAlive
	d := ml.selfDeltaLocked()
	ml.push(d)
	return d
}

// Leave marks this node as gracefully left and returns the delta to
// broadcast. After Leave, claims about self are no longer refuted.
func (ml *Memberlist) Leave() Delta {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if ml.selfState != StateLeft {
		ml.selfState = StateLeft
		ml.selfInc++
		ml.placementOK = false
	}
	d := ml.selfDeltaLocked()
	ml.push(d)
	return d
}

// Left reports whether this node has gracefully left.
func (ml *Memberlist) Left() bool {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	return ml.selfState == StateLeft
}

// AppendPiggyback appends up to limit queued deltas to dst (reusing its
// capacity), consuming one retransmission from each. Freshest-first
// would need a sort; FIFO is fine at fleet scale and keeps this
// allocation-free once dst's capacity has grown.
func (ml *Memberlist) AppendPiggyback(dst []Delta, limit int) []Delta {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	kept := ml.queue[:0]
	for _, q := range ml.queue {
		if len(dst) < limit {
			dst = append(dst, q.d)
			q.left--
		}
		if q.left > 0 {
			kept = append(kept, q)
		}
	}
	ml.queue = kept
	return dst
}

// rebuildPlacementLocked refreshes the sorted placement set and epoch.
func (ml *Memberlist) rebuildPlacementLocked() {
	ml.placementIDs = ml.placementIDs[:0]
	if ml.announced && ml.selfState.InPlacement() {
		ml.placementIDs = append(ml.placementIDs, ml.self)
	}
	for id, m := range ml.members {
		if m.state.InPlacement() {
			ml.placementIDs = append(ml.placementIDs, id)
		}
	}
	sort.Strings(ml.placementIDs)
	// FNV-1a over the sorted IDs with a separator, finalized with
	// splitmix64: two nodes with the same placement set compute the
	// same epoch with no coordination.
	h := uint64(14695981039346656037)
	for _, id := range ml.placementIDs {
		for i := 0; i < len(id); i++ {
			h ^= uint64(id[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	ml.epoch = h ^ (h >> 31)
	ml.placementOK = true
}

// Placement returns the current ring epoch and the placement set as
// id → URL (self included once announced).
func (ml *Memberlist) Placement() (epoch uint64, urls map[string]string) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if !ml.placementOK {
		ml.rebuildPlacementLocked()
	}
	urls = make(map[string]string, len(ml.placementIDs))
	for _, id := range ml.placementIDs {
		if id == ml.self {
			urls[id] = ml.selfURL
			continue
		}
		urls[id] = ml.members[id].url
	}
	return ml.epoch, urls
}

// Epoch returns the current placement epoch.
func (ml *Memberlist) Epoch() uint64 {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if !ml.placementOK {
		ml.rebuildPlacementLocked()
	}
	return ml.epoch
}

// Members snapshots every known member — self included — sorted by ID,
// for /fleet/nodes and the gctop membership panel.
func (ml *Memberlist) Members() []Member {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	out := make([]Member, 0, len(ml.members)+1)
	selfState := ml.selfState
	if !ml.announced {
		// A warming-up joiner: report as suspect-of-placement? No —
		// report the truth: alive but not yet placed. The state machine
		// has no separate state for it; "alive" plus absence from the
		// placement set tells the story.
		selfState = StateAlive
	}
	out = append(out, Member{
		ID: ml.self, URL: ml.selfURL,
		State: selfState, StateName: selfState.String(),
		Incarnation: ml.selfInc,
	})
	for id, m := range ml.members {
		out = append(out, Member{
			ID: id, URL: m.url,
			State: m.state, StateName: m.state.String(),
			Incarnation: m.inc,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Snapshot returns every register as deltas (self included) — the join
// response, seeding a new node's membership in one message.
func (ml *Memberlist) Snapshot() []Delta {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	out := make([]Delta, 0, len(ml.members)+1)
	if ml.announced {
		out = append(out, ml.selfDeltaLocked())
	}
	for id, m := range ml.members {
		out = append(out, Delta{ID: id, URL: m.url, State: m.state, Inc: m.inc})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// State returns a member's current register (ok=false for unknown IDs).
func (ml *Memberlist) State(id string) (st State, inc uint64, ok bool) {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if id == ml.self {
		return ml.selfState, ml.selfInc, true
	}
	if m, known := ml.members[id]; known {
		return m.state, m.inc, true
	}
	return 0, 0, false
}

// AppendProbeTargets appends every placed peer (alive or suspect, never
// self) to dst, reusing its capacity — the probe rotation rebuilds its
// schedule through this without allocating.
func (ml *Memberlist) AppendProbeTargets(dst []string) []string {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	for id, m := range ml.members {
		if m.state.InPlacement() {
			dst = append(dst, id)
		}
	}
	return dst
}

// AppendDead appends every dead peer to dst — the recovery probe's
// candidate list (a dead node that was merely partitioned away can be
// coaxed back by telling it what the fleet thinks of it).
func (ml *Memberlist) AppendDead(dst []string) []string {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	for id, m := range ml.members {
		if m.state == StateDead {
			dst = append(dst, id)
		}
	}
	return dst
}

// URL resolves a member's base URL ("" when unknown).
func (ml *Memberlist) URL(id string) string {
	ml.mu.Lock()
	defer ml.mu.Unlock()
	if id == ml.self {
		return ml.selfURL
	}
	if m, ok := ml.members[id]; ok {
		return m.url
	}
	return ""
}
