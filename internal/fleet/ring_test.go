package fleet

import (
	"fmt"
	"testing"

	"jvmgc/internal/labd"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Content addresses are hex SHA-256 digests; any well-spread
		// string works because the ring re-hashes, but keep the shape.
		keys[i] = fmt.Sprintf("%064x", uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return keys
}

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// TestRingBalance: with the default vnode count, key ownership across
// 3, 5 and 8 nodes stays within 30% of the fair share (arc-share
// stddev shrinks like 1/sqrt(vnodes); 128 vnodes puts 3 sigma well
// under that band). The hash is fixed, so this is a property check,
// not a flake.
func TestRingBalance(t *testing.T) {
	keys := testKeys(100_000)
	for _, n := range []int{3, 5, 8} {
		r := NewRing(ringNodes(n), 0)
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d received keys", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for node, c := range counts {
			if dev := float64(c)/fair - 1; dev > 0.30 || dev < -0.30 {
				t.Errorf("%d nodes: %s owns %d keys, %.1f%% off fair share %g",
					n, node, c, 100*dev, fair)
			}
		}
		t.Logf("%d nodes: min/max share deviation logged across %d keys", n, len(keys))
	}
}

// TestRingMinimalRemap: adding a sixth node moves keys only TO the
// newcomer, and no more than ~1/6 of the key space moves (the arc the
// newcomer claims). Removing it again restores the original mapping
// exactly — rings are pure functions of membership — so the same
// comparison certifies the leave direction: the only keys that remap
// on a leave are the leaver's own.
func TestRingMinimalRemap(t *testing.T) {
	keys := testKeys(60_000)
	base := NewRing([]string{"a", "b", "c", "d", "e"}, 0)
	grown := NewRing([]string{"a", "b", "c", "d", "e", "f"}, 0)

	moved := 0
	for _, k := range keys {
		was, now := base.Lookup(k), grown.Lookup(k)
		if was != now {
			moved++
			if now != "f" {
				t.Fatalf("key %s moved %s -> %s on join; only moves to the newcomer are allowed",
					k[:12], was, now)
			}
		}
	}
	share := float64(moved) / float64(len(keys))
	if share > 1.5/6 {
		t.Errorf("join remapped %.1f%% of keys, want <= ~1/6 (+50%% imbalance slack)", 100*share)
	}
	if moved == 0 {
		t.Error("join remapped nothing; the newcomer owns no keys")
	}

	// Leave direction: rebuilding the 5-node ring reproduces the original
	// mapping bit for bit, so a leave remaps exactly the leaver's keys.
	rebuilt := NewRing([]string{"f", "e", "d", "c", "b", "a", "a"}, 0) // order/dup-insensitive
	for _, k := range keys {
		if grown.Lookup(k) != rebuilt.Lookup(k) {
			t.Fatal("ring construction is order-sensitive; membership changes would remap spuriously")
		}
	}
}

// TestRingWalkOrder: Walk offers every node exactly once, owner first.
func TestRingWalkOrder(t *testing.T) {
	r := NewRing(ringNodes(5), 0)
	for _, k := range testKeys(50) {
		var order []string
		r.Walk(k, func(n string) bool {
			order = append(order, n)
			return false
		})
		if len(order) != r.Len() {
			t.Fatalf("walk offered %d nodes, want %d", len(order), r.Len())
		}
		if order[0] != r.Lookup(k) {
			t.Fatalf("walk starts at %s, Lookup says %s", order[0], r.Lookup(k))
		}
		seen := make(map[string]bool)
		for _, n := range order {
			if seen[n] {
				t.Fatalf("walk offered %s twice", n)
			}
			seen[n] = true
		}
	}
}

func TestRingValidateBoundsFleetSize(t *testing.T) {
	if err := NewRing(ringNodes(maxRingNodes), 4).Validate(); err != nil {
		t.Errorf("%d nodes must validate: %v", maxRingNodes, err)
	}
	if err := NewRing(ringNodes(maxRingNodes+1), 4).Validate(); err == nil {
		t.Errorf("%d nodes must be rejected", maxRingNodes+1)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup("anything"); got != "" {
		t.Errorf("empty ring Lookup = %q, want \"\"", got)
	}
	r.Walk("anything", func(string) bool { t.Fatal("walk on empty ring"); return true })
}

// TestRouterPickBoundedLoadAndFailover drives the placement policy
// directly: healthy owner wins, an overloaded owner slides to the next
// arc, a dead owner is skipped, and a fully dead fleet returns "".
func TestRouterPickBoundedLoadAndFailover(t *testing.T) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
	}})
	if err != nil {
		t.Fatal(err)
	}
	key := "0c3f7d1e"
	owner := rt.Ring().Lookup(key)
	if got := rt.pick(key); got != owner {
		t.Fatalf("idle pick = %s, want ring owner %s", got, owner)
	}

	// Load the owner past the bound: with factor 1.25 and 8 pending on
	// the owner alone, bound = ceil(1.25*9/3) = 4 < 8, so placement
	// slides to the next arc.
	rt.acquire(owner, 8)
	slid := rt.pick(key)
	if slid == owner {
		t.Fatalf("pick stayed on overloaded owner %s", owner)
	}
	var next string
	rt.Ring().Walk(key, func(n string) bool {
		if n != owner {
			next = n
			return true
		}
		return false
	})
	if slid != next {
		t.Errorf("overload slid to %s, want next arc %s", slid, next)
	}
	rt.release(owner, 8)

	// Dead owner: skipped. Dead fleet: no placement.
	rt.MarkDown(owner)
	if got := rt.pick(key); got != next {
		t.Errorf("dead-owner pick = %s, want %s", got, next)
	}
	rt.MarkUp(owner)
	for n := range rt.cfg.Nodes {
		rt.MarkDown(n)
	}
	if got := rt.pick(key); got != "" {
		t.Errorf("all-down pick = %q, want \"\"", got)
	}
}

// TestRouterPickAllAtBoundFallsBack: when every alive node is at the
// load bound, pick still places (on the owner) rather than failing.
func TestRouterPickAllAtBoundFallsBack(t *testing.T) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
	}})
	if err != nil {
		t.Fatal(err)
	}
	for n := range rt.cfg.Nodes {
		rt.acquire(n, 100)
	}
	key := "deadbeef"
	if got := rt.pick(key); got != rt.Ring().Lookup(key) {
		t.Errorf("saturated pick = %q, want owner %q", got, rt.Ring().Lookup(key))
	}
}

// The routing hot path is 0-alloc by design (manual binary search, no
// closures, bitmask visited set); these tests pin that down exactly,
// and the benchmarks below feed the ci.sh bench gate.
func TestRingLookupZeroAlloc(t *testing.T) {
	r := NewRing(ringNodes(8), 0)
	keys := testKeys(64)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		_ = r.Lookup(keys[i%len(keys)])
		i++
	}); avg != 0 {
		t.Errorf("Ring.Lookup allocates %.1f/op, want 0", avg)
	}
}

func TestRouterPickZeroAlloc(t *testing.T) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
	}})
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(64)
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		_ = rt.pick(keys[i%len(keys)])
		i++
	}); avg != 0 {
		t.Errorf("Router.pick allocates %.1f/op, want 0", avg)
	}
}

var sinkNode string

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(ringNodes(8), 0)
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkNode = r.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkRouterPick(b *testing.B) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
		"d": "http://d", "e": "http://e",
	}})
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkNode = rt.pick(keys[i%len(keys)])
	}
}

// BenchmarkRouterForward measures the per-request routing core of the
// submit path — content-address the spec (fast JSON encode + SHA-256
// into a stack buffer) and place it on the ring. Bench-gated at 0
// allocs/op: this runs once per submission, and under saturation load
// any allocation here multiplies into GC pressure fleet-wide.
func BenchmarkRouterForward(b *testing.B) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
		"d": "http://d", "e": "http://e",
	}})
	if err != nil {
		b.Fatal(err)
	}
	specs := make([]labd.JobSpec, 64)
	for i := range specs {
		specs[i] = labd.JobSpec{
			Kind:             labd.KindSimulate,
			Collector:        "ParallelOld",
			HeapBytes:        2 << 30,
			Threads:          8,
			AllocBytesPerSec: 150e6,
			DurationSeconds:  5,
			Seed:             uint64(i) + 1,
		}
	}
	var keyBuf [64]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node, err := rt.routeSpec(specs[i%len(specs)], &keyBuf)
		if err != nil {
			b.Fatal(err)
		}
		sinkNode = node
	}
}

func TestRouteSpecZeroAlloc(t *testing.T) {
	rt, err := New(Config{Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c",
	}})
	if err != nil {
		t.Fatal(err)
	}
	spec := labd.JobSpec{Kind: labd.KindSimulate, Collector: "CMS",
		HeapBytes: 4 << 30, DurationSeconds: 10, Seed: 42}
	var keyBuf [64]byte
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := rt.routeSpec(spec, &keyBuf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("routeSpec allocates %.1f/op, want 0", avg)
	}
	// The derived key must match the canonical one, and placement must
	// agree with a string-keyed pick.
	want, err := labd.SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(keyBuf[:]) != want {
		t.Errorf("routeSpec key %q != SpecKey %q", keyBuf[:], want)
	}
	if got, _ := rt.routeSpec(spec, &keyBuf); got != rt.pick(want) {
		t.Errorf("routeSpec placement %q != pick %q", got, rt.pick(want))
	}
}
