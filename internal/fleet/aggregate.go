package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"jvmgc/internal/hdrhist"
	"jvmgc/internal/labd"
	"jvmgc/internal/obs"
	"jvmgc/internal/telemetry"
)

// FleetState is the fleet-wide rollup of per-node observability
// snapshots (GET /fleet/state). Every aggregate is exact, not
// approximate: counters are sums, the latency histogram is the
// bucket-level merge of the per-node histograms (hdrhist.Merge is
// commutative and lossless, and nodes are folded in sorted-ID order so
// two aggregators always produce identical bytes), SLO burn rates are
// recomputed from summed window counts, and the slowest-trace list is
// the union of per-node slowest sets with node labels intact.
type FleetState struct {
	// Nodes holds the per-node snapshots the aggregate was folded from,
	// sorted by node ID.
	Nodes []labd.NodeState `json:"nodes"`
	// Unreachable lists configured nodes that did not answer.
	Unreachable []string `json:"unreachable,omitempty"`

	Counters map[string]int64 `json:"counters"`

	QueueDepth   int `json:"queue_depth"`
	Running      int `json:"running"`
	Workers      int `json:"workers"`
	CacheEntries int `json:"cache_entries"`
	DiskEntries  int `json:"disk_entries,omitempty"`

	LatencyHist []byte `json:"latency_hist,omitempty"`
	QueueHist   []byte `json:"queue_hist,omitempty"`

	SLO *obs.Status `json:"slo,omitempty"`

	Slowest        []obs.TraceSummary `json:"slowest,omitempty"`
	TracesSeen     int64              `json:"traces_seen,omitempty"`
	TracesRetained int                `json:"traces_retained,omitempty"`
}

// MergeStates folds per-node snapshots into the fleet rollup. States
// are re-sorted by node ID first, so the result is independent of
// arrival order.
func MergeStates(states []labd.NodeState) FleetState {
	sorted := make([]labd.NodeState, len(states))
	copy(sorted, states)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Node < sorted[b].Node })

	out := FleetState{Nodes: sorted, Counters: make(map[string]int64)}
	var latAcc, queueAcc *hdrhist.Hist
	var slos []obs.Status
	maxSlowest := 0
	for _, st := range sorted {
		for name, v := range st.Counters {
			out.Counters[name] += v
		}
		out.QueueDepth += st.QueueDepth
		out.Running += st.Running
		out.Workers += st.Workers
		out.CacheEntries += st.CacheEntries
		out.DiskEntries += st.DiskEntries
		latAcc = mergeHist(latAcc, st.LatencyHist)
		queueAcc = mergeHist(queueAcc, st.QueueHist)
		if st.SLO != nil {
			slos = append(slos, *st.SLO)
		}
		out.Slowest = append(out.Slowest, st.Slowest...)
		if len(st.Slowest) > maxSlowest {
			maxSlowest = len(st.Slowest)
		}
		out.TracesSeen += st.TracesSeen
		out.TracesRetained += st.TracesRetained
	}
	if latAcc != nil {
		out.LatencyHist, _ = latAcc.MarshalBinary()
	}
	if queueAcc != nil {
		out.QueueHist, _ = queueAcc.MarshalBinary()
	}
	if len(slos) > 0 {
		merged := obs.MergeStatus(slos...)
		out.SLO = &merged
	}
	// The fleet's slowest-K: union the per-node slowest sets and keep
	// the K globally slowest, K being the deepest per-node retention —
	// the exact set one daemon with all the traffic would have retained.
	sort.SliceStable(out.Slowest, func(a, b int) bool {
		return out.Slowest[a].DurationSeconds > out.Slowest[b].DurationSeconds
	})
	if len(out.Slowest) > maxSlowest {
		out.Slowest = out.Slowest[:maxSlowest]
	}
	return out
}

// mergeHist folds one node's serialized histogram into the accumulator.
// A decode or config mismatch drops that node's histogram rather than
// failing the rollup (mixed-version fleets mid-upgrade).
func mergeHist(acc *hdrhist.Hist, data []byte) *hdrhist.Hist {
	if len(data) == 0 {
		return acc
	}
	h, err := hdrhist.Decode(data)
	if err != nil {
		return acc
	}
	if acc == nil {
		return h
	}
	if acc.Merge(h) != nil {
		return acc
	}
	return acc
}

// gatherStates pulls /v1/state from every placed node (the local
// daemon directly), marking unreachable nodes down.
func (rt *Router) gatherStates(ctx context.Context) (states []labd.NodeState, unreachable []string) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, url := range rt.view.Load().urls {
		if id == rt.cfg.Self && rt.local != nil {
			st := rt.local.NodeState()
			mu.Lock()
			states = append(states, st)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			st, err := rt.fetchState(ctx, url)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				unreachable = append(unreachable, id)
				rt.MarkDown(id)
				return
			}
			if st.Node == "" {
				st.Node = id
			}
			states = append(states, *st)
		}(id, url)
	}
	wg.Wait()
	sort.Strings(unreachable)
	return states, unreachable
}

func (rt *Router) fetchState(ctx context.Context, url string) (*labd.NodeState, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errors.New("fleet: state probe: " + resp.Status)
	}
	var st labd.NodeState
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// handleFleetState serves the merged rollup plus the per-node snapshots
// it was folded from.
func (rt *Router) handleFleetState(w http.ResponseWriter, r *http.Request) {
	states, unreachable := rt.gatherStates(r.Context())
	merged := MergeStates(states)
	merged.Unreachable = unreachable
	writeJSON(w, http.StatusOK, merged)
}

// handleFleetSLO serves the fleet-wide burn-rate reading: per-window
// counts summed across nodes, burn rates and severity re-derived with
// the same multiwindow rule a single node uses.
func (rt *Router) handleFleetSLO(w http.ResponseWriter, r *http.Request) {
	states, _ := rt.gatherStates(r.Context())
	var slos []obs.Status
	for _, st := range states {
		if st.SLO != nil {
			slos = append(slos, *st.SLO)
		}
	}
	if len(slos) == 0 {
		writeError(w, http.StatusNotFound, errors.New("fleet: SLO monitoring disabled on all nodes"))
		return
	}
	writeJSON(w, http.StatusOK, obs.MergeStatus(slos...))
}

// handleFleetTraces serves the fleet's slowest-trace union, each entry
// labeled with the node that retains it (resolve the full trace at that
// node's /debug/traces/{id}).
func (rt *Router) handleFleetTraces(w http.ResponseWriter, r *http.Request) {
	states, unreachable := rt.gatherStates(r.Context())
	merged := MergeStates(states)
	writeJSON(w, http.StatusOK, struct {
		Seen        int64              `json:"seen"`
		Retained    int                `json:"retained"`
		Slowest     []obs.TraceSummary `json:"slowest"`
		Unreachable []string           `json:"unreachable,omitempty"`
	}{merged.TracesSeen, merged.TracesRetained, merged.Slowest, unreachable})
}

// handleFleetMetrics renders the rollup in Prometheus text format under
// the same metric names a single daemon serves, so anything that reads
// a daemon's /metrics (cmd/gctop, a scrape config) reads the fleet by
// pointing at /fleet/metrics instead.
func (rt *Router) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	states, _ := rt.gatherStates(r.Context())
	merged := MergeStates(states)

	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	snap := telemetry.PromSnapshot{OpenMetrics: openMetrics}
	names := make([]string, 0, len(merged.Counters))
	for name := range merged.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Counter(name, "Fleet-wide sum of the per-node counter.", merged.Counters[name])
	}
	snap.Gauge("fleet.nodes", "Placed fleet nodes in the current view.",
		float64(rt.Ring().Len()))
	snap.Gauge("fleet.epoch", "Current membership epoch.", float64(rt.Epoch()))
	snap.Gauge("fleet.nodes.reachable", "Nodes that answered the state probe.",
		float64(len(merged.Nodes)))
	snap.Gauge("labd.queue.depth", "Jobs waiting for a worker, fleet-wide.",
		float64(merged.QueueDepth))
	snap.Gauge("labd.jobs.running", "Jobs executing right now, fleet-wide.",
		float64(merged.Running))
	snap.Gauge("labd.workers", "Total worker-pool size across nodes.", float64(merged.Workers))
	snap.Gauge("labd.cache.entries", "Results held in memory caches, fleet-wide.",
		float64(merged.CacheEntries))
	if merged.DiskEntries > 0 {
		snap.Gauge("labd.cache.disk.entries", "On-disk cache entries, fleet-wide.",
			float64(merged.DiskEntries))
	}
	snap.Gauge("labd.traces.seen", "Traces ever filed, fleet-wide.",
		float64(merged.TracesSeen))
	snap.Gauge("labd.traces.retained", "Traces retained across node stores.",
		float64(merged.TracesRetained))
	per := make([]telemetry.LabeledValue, 0, len(merged.Nodes))
	for _, st := range merged.Nodes {
		per = append(per, telemetry.LabeledValue{
			Labels: []telemetry.Label{{Name: "node", Value: st.Node}},
			Value:  float64(st.QueueDepth),
		})
	}
	snap.LabeledGauge("fleet.node.queue.depth", "Per-node queue depth.", per)
	if h, err := hdrhist.Decode(merged.LatencyHist); err == nil {
		snap.Histogram("labd_job_latency_hist_seconds",
			"End-to-end job latency distribution, merged across the fleet.", h)
	}
	if h, err := hdrhist.Decode(merged.QueueHist); err == nil {
		snap.Histogram("labd_queue_wait_seconds",
			"Queue wait distribution, merged across the fleet.", h)
	}

	if openMetrics {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	_ = snap.Write(w)
}

// NodeInfo is one row of /fleet/nodes: membership plus a live probe.
// State/Incarnation come from the gossip memberlist when one is
// attached ("alive"/"suspect"/"dead"/"left"); a static fleet reports
// "alive" or "down" from the router's own mark-down set.
type NodeInfo struct {
	ID          string             `json:"id"`
	URL         string             `json:"url"`
	Self        bool               `json:"self,omitempty"`
	Alive       bool               `json:"alive"`
	State       string             `json:"state"`
	Incarnation uint64             `json:"incarnation,omitempty"`
	Health      *labd.HealthStatus `json:"health,omitempty"`
}

// handleFleetNodes probes every placed node and serves membership
// (with gossip states when live membership is on), health and the
// router's own placement counters.
func (rt *Router) handleFleetNodes(w http.ResponseWriter, r *http.Request) {
	health := rt.Health(r.Context())
	v := rt.view.Load()
	type memberState struct {
		state string
		inc   uint64
		url   string
	}
	members := make(map[string]memberState)
	for id, url := range v.urls {
		members[id] = memberState{state: "alive", url: url}
	}
	if rt.g != nil {
		// Include non-placed registers too: a dead or left node showing
		// up with its state is the dashboard's whole point.
		for _, m := range rt.g.Memberlist().Members() {
			members[m.ID] = memberState{state: m.StateName, inc: m.Incarnation, url: m.URL}
		}
	}
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	nodes := make([]NodeInfo, 0, len(ids))
	for _, id := range ids {
		h := health[id]
		ms := members[id]
		if rt.g == nil && rt.Down(id) {
			ms.state = "down"
		}
		nodes = append(nodes, NodeInfo{
			ID:          id,
			URL:         ms.url,
			Self:        id == rt.cfg.Self,
			Alive:       h != nil && h.Status == "ok",
			State:       ms.state,
			Incarnation: ms.inc,
			Health:      h,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Self   string      `json:"self,omitempty"`
		Epoch  uint64      `json:"epoch"`
		Nodes  []NodeInfo  `json:"nodes"`
		Router RouterStats `json:"router"`
	}{rt.cfg.Self, v.epoch, nodes, rt.Stats()})
}
