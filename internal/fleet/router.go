package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/labd"
)

// Fault-injection sites the router carries (internal/faultinject). Both
// are inert unless Config.Chaos arms them.
const (
	// FaultNodeKill kills the forward's target node: Config.KillHook is
	// invoked with the target's ID (the chaos test closes that node's
	// listener), and the forward then fails for real, exercising the
	// mark-down → re-route failover path end to end.
	FaultNodeKill = "fleet/node.kill"
	// FaultRoutePartition fails a forward as if the network between this
	// router and the target dropped: the request is never sent, the
	// target is marked down, and the job re-routes.
	FaultRoutePartition = "fleet/route.partition"
)

// routedHeader marks a request already placed by a router. A node
// receiving it serves the job locally, whatever the ring says — the
// sender is authoritative for placement — which is what makes failover
// re-routes terminate instead of looping between two routers with
// different views of membership.
const routedHeader = "X-Labd-Routed"

// Config parameterizes a Router.
type Config struct {
	// Self is this node's ID — the Nodes entry whose jobs are served by
	// the local daemon instead of forwarded. Empty means a standalone
	// router fronting the fleet without a daemon of its own.
	Self string
	// Nodes maps node ID → base URL ("http://host:port") for every
	// fleet member, including Self (its URL is what peers use).
	Nodes map[string]string
	// Vnodes is the virtual-node count per node (<=0 = default 128).
	Vnodes int
	// LoadFactor is the bounded-load multiplier: a node may hold at most
	// ceil(LoadFactor · mean pending) routed jobs before placement
	// slides to the next arc. <=1 disables the bound (pure consistent
	// hashing). Default 1.25 — the classic "power of bounded loads"
	// setting: near-minimal remapping with a hard cap on hot-shard
	// pileup.
	LoadFactor float64
	// HTTPClient is the forwarding transport (default: a client with a
	// 2-minute timeout, matched to the daemon's default job timeout).
	HTTPClient *http.Client
	// Chaos arms the router's fault sites; nil is a no-op.
	Chaos *faultinject.Injector
	// KillHook is invoked with the target node's ID when FaultNodeKill
	// fires; chaos tests use it to actually take the node down.
	KillHook func(node string)
}

func (c Config) withDefaults() Config {
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	return c
}

// Router places jobs on their ring owners and serves the fleet rollup.
// It implements labd.PeerFetcher, so the local daemon's cache gains the
// peer tier when wired via labd.Config.Peers.
type Router struct {
	cfg  Config
	ring *Ring

	// local is the co-resident daemon (nil for a standalone router);
	// localH its handler, served on the self fast path so local jobs
	// never cross a socket.
	local  *labd.Server
	localH http.Handler

	mu      sync.Mutex
	down    map[string]bool
	pending map[string]int // routed jobs in flight per node (bounded load)

	forwards   atomic.Int64 // jobs forwarded to a peer
	localJobs  atomic.Int64 // jobs placed on the local daemon
	reroutes   atomic.Int64 // placements retried after a node failure
	marksDown  atomic.Int64 // node-down transitions observed
	kills      atomic.Int64 // FaultNodeKill firings
	partitions atomic.Int64 // FaultRoutePartition firings
	peerHits   atomic.Int64 // peer cache fetches that returned bytes
	peerProbes atomic.Int64 // peer cache fetch attempts
}

// New builds a router over the given membership.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: no nodes configured")
	}
	ids := make([]string, 0, len(cfg.Nodes))
	for id := range cfg.Nodes {
		ids = append(ids, id)
	}
	if cfg.Self != "" {
		if _, ok := cfg.Nodes[cfg.Self]; !ok {
			return nil, fmt.Errorf("fleet: self %q not in node set", cfg.Self)
		}
	}
	ring := NewRing(ids, cfg.Vnodes)
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	return &Router{
		cfg:     cfg,
		ring:    ring,
		down:    make(map[string]bool),
		pending: make(map[string]int),
	}, nil
}

// SetLocal attaches the co-resident daemon. Separate from New because
// the daemon and router reference each other (the daemon's peer cache
// tier is the router): build the router, pass it as labd.Config.Peers,
// then attach the daemon here.
func (rt *Router) SetLocal(s *labd.Server) {
	rt.local = s
	rt.localH = s.Handler()
}

// Ring exposes the placement ring (for tests and the fleet dashboard).
func (rt *Router) Ring() *Ring { return rt.ring }

// MarkDown records a node as unavailable; placement skips it until
// MarkUp (or a successful health probe) revives it.
func (rt *Router) MarkDown(node string) {
	rt.mu.Lock()
	was := rt.down[node]
	rt.down[node] = true
	rt.mu.Unlock()
	if !was {
		rt.marksDown.Add(1)
	}
}

// MarkUp records a node as available again.
func (rt *Router) MarkUp(node string) {
	rt.mu.Lock()
	delete(rt.down, node)
	rt.mu.Unlock()
}

// Down reports whether a node is currently marked down.
func (rt *Router) Down(node string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.down[node]
}

func (rt *Router) acquire(node string, n int) {
	rt.mu.Lock()
	rt.pending[node] += n
	rt.mu.Unlock()
}

func (rt *Router) release(node string, n int) {
	rt.mu.Lock()
	if rt.pending[node] -= n; rt.pending[node] <= 0 {
		delete(rt.pending, node)
	}
	rt.mu.Unlock()
}

// pick places a key: the first alive candidate in ring order whose
// pending load is under the bounded-load cap, falling back to the first
// alive candidate when every node is at the bound. Returns "" when the
// whole fleet is down. Allocation-free (benchmarked): the walk is
// inlined with a bitmask visited set rather than using Ring.Walk, whose
// closure argument would allocate per placement.
func (rt *Router) pick(key string) string {
	r := rt.ring
	if len(r.points) == 0 {
		return ""
	}
	start := r.start(key)
	rt.mu.Lock()
	defer rt.mu.Unlock()

	alive, total := 0, 0
	for _, n := range r.nodes {
		if !rt.down[n] {
			alive++
			total += rt.pending[n]
		}
	}
	if alive == 0 {
		return ""
	}
	bound := math.MaxInt
	if rt.cfg.LoadFactor > 1 {
		bound = int(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(alive)))
		if bound < 1 {
			bound = 1
		}
	}

	var visited uint64
	offered := 0
	fallback := ""
	for i := 0; i < len(r.points) && offered < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		offered++
		n := r.nodes[p.node]
		if rt.down[n] {
			continue
		}
		if fallback == "" {
			fallback = n
		}
		if rt.pending[n] < bound {
			return n
		}
	}
	return fallback
}

// injectTransport runs the router's chaos sites for one forward to
// node. A node-kill invokes the hook (which takes the node down for
// real) and lets the forward fail naturally; a partition fails the
// forward before it is sent.
func (rt *Router) injectTransport(node string) error {
	if rt.cfg.Chaos.Fire(FaultNodeKill) {
		rt.kills.Add(1)
		if rt.cfg.KillHook != nil {
			rt.cfg.KillHook(node)
		}
	}
	if err := rt.cfg.Chaos.Error(FaultRoutePartition); err != nil {
		rt.partitions.Add(1)
		return err
	}
	return nil
}

// maxPeerProbes bounds how many peers a cache fetch asks. The key's
// previous owner is almost always within the first ring successors
// (membership changes slide ownership one arc over), so probing deeper
// buys little and costs a round trip per miss.
const maxPeerProbes = 2

// Fetch implements labd.PeerFetcher: ask the key's ring successors
// (skipping self) for cached result bytes, verifying the SHA-256 the
// peer advertises before trusting bytes that crossed the network. A
// false return sends the local daemon to recompute — peer fetching is
// an optimization, never a correctness dependency.
func (rt *Router) Fetch(ctx context.Context, key string) ([]byte, bool) {
	r := rt.ring
	if len(r.points) == 0 {
		return nil, false
	}
	start := r.start(key)
	var visited uint64
	offered, probes := 0, 0
	for i := 0; i < len(r.points) && offered < len(r.nodes) && probes < maxPeerProbes; i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		offered++
		n := r.nodes[p.node]
		if n == rt.cfg.Self || rt.Down(n) {
			continue
		}
		probes++
		rt.peerProbes.Add(1)
		if b, ok := rt.fetchFrom(ctx, n, key); ok {
			rt.peerHits.Add(1)
			return b, true
		}
	}
	return nil, false
}

// fetchFrom asks one peer for one key (GET /v1/cache/{key}).
func (rt *Router) fetchFrom(ctx context.Context, node, key string) ([]byte, bool) {
	if err := rt.injectTransport(node); err != nil {
		rt.MarkDown(node)
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		rt.cfg.Nodes[node]+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		rt.MarkDown(node)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A clean miss (404) proves the node alive; only transport-level
		// failures mark it down.
		return nil, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		rt.MarkDown(node)
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != resp.Header.Get("X-Labd-Sha256") {
		// Corrupt or truncated transfer; recompute rather than trust it.
		return nil, false
	}
	return body, true
}

// Handler serves the fleet surface: job submission (routed), the
// /fleet/* observability rollup, and — when a local daemon is attached —
// everything else (job status, results, metrics, health) from the local
// daemon unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", rt.handleBatch)
	mux.HandleFunc("GET /fleet/state", rt.handleFleetState)
	mux.HandleFunc("GET /fleet/metrics", rt.handleFleetMetrics)
	mux.HandleFunc("GET /fleet/slo", rt.handleFleetSLO)
	mux.HandleFunc("GET /fleet/traces", rt.handleFleetTraces)
	mux.HandleFunc("GET /fleet/nodes", rt.handleFleetNodes)
	mux.HandleFunc("/", rt.handleFallthrough)
	return mux
}

func (rt *Router) handleFallthrough(w http.ResponseWriter, r *http.Request) {
	if rt.localH != nil {
		rt.localH.ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Role   string `json:"role"`
		}{"ok", "router"})
		return
	}
	writeError(w, http.StatusNotFound,
		errors.New("fleet: standalone router: only /v1/jobs, /v1/jobs/batch and /fleet/* are served"))
}

// serveLocal hands a request to the co-resident daemon, restoring the
// already-consumed body.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.localJobs.Add(1)
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.localH.ServeHTTP(w, r)
}

// handleSubmit routes one job to its owner: local fast path when the
// owner is this node, forward with failover otherwise. A request
// already routed by a peer is always served locally (see routedHeader).
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.Header.Get(routedHeader) != "" && rt.localH != nil {
		rt.serveLocal(w, r, body)
		return
	}
	var req labd.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Job.Kind == "" {
		var spec labd.JobSpec
		if err := json.Unmarshal(body, &spec); err == nil && spec.Kind != "" {
			req.Job = spec
		}
	}
	key, err := labd.SpecKey(req.Job)
	if err != nil {
		// Invalid spec: the local daemon produces the canonical 400; a
		// standalone router answers directly.
		if rt.localH != nil {
			rt.serveLocal(w, r, body)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}

	for attempt := 0; attempt < rt.ring.Len(); attempt++ {
		owner := rt.pick(key)
		if owner == "" {
			break
		}
		if attempt > 0 {
			rt.reroutes.Add(1)
		}
		if owner == rt.cfg.Self {
			rt.serveLocal(w, r, body)
			return
		}
		if rt.forward(w, r, owner, body) {
			return
		}
		// forward marked the owner down; the next pick slides to the
		// key's next arc.
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errors.New("fleet: no nodes available"))
}

// forward proxies one submission to a peer node. False reports a
// transport-level failure (node marked down, job should re-route);
// true means a response — any response — was relayed to the client.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node string, body []byte) bool {
	rt.acquire(node, 1)
	defer rt.release(node, 1)
	if err := rt.injectTransport(node); err != nil {
		rt.MarkDown(node)
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		rt.cfg.Nodes[node]+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return true
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(routedHeader, "1")
	if tp := r.Header.Get("traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		rt.MarkDown(node)
		return false
	}
	defer resp.Body.Close()
	rt.forwards.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", "Location",
		"X-Labd-Job", "X-Labd-Key", "X-Labd-Cache", "X-Labd-Trace", "X-Labd-Node"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// Health probes every node's /healthz (the local daemon directly),
// updating the down set from what it finds, and returns the readings
// keyed by node ID (nil entry = unreachable).
func (rt *Router) Health(ctx context.Context) map[string]*labd.HealthStatus {
	out := make(map[string]*labd.HealthStatus, len(rt.cfg.Nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, url := range rt.cfg.Nodes {
		if id == rt.cfg.Self && rt.local != nil {
			h := rt.local.Health()
			mu.Lock()
			out[id] = &h
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			h := rt.probeHealth(ctx, url)
			mu.Lock()
			out[id] = h
			mu.Unlock()
			if h == nil || h.Status != "ok" {
				rt.MarkDown(id)
			} else {
				rt.MarkUp(id)
			}
		}(id, url)
	}
	wg.Wait()
	return out
}

func (rt *Router) probeHealth(ctx context.Context, url string) *labd.HealthStatus {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return nil
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var h labd.HealthStatus
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil {
		return nil
	}
	return &h
}

// RouterStats snapshots the router's own counters for /fleet/nodes.
type RouterStats struct {
	Forwards      int64 `json:"forwards"`
	LocalJobs     int64 `json:"local_jobs"`
	Reroutes      int64 `json:"reroutes"`
	MarksDown     int64 `json:"marks_down"`
	Kills         int64 `json:"injected_kills"`
	Partitions    int64 `json:"injected_partitions"`
	PeerProbes    int64 `json:"peer_probes"`
	PeerHits      int64 `json:"peer_hits"`
	PendingRouted int   `json:"pending_routed"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	pending := 0
	for _, n := range rt.pending {
		pending += n
	}
	rt.mu.Unlock()
	return RouterStats{
		Forwards:      rt.forwards.Load(),
		LocalJobs:     rt.localJobs.Load(),
		Reroutes:      rt.reroutes.Load(),
		MarksDown:     rt.marksDown.Load(),
		Kills:         rt.kills.Load(),
		Partitions:    rt.partitions.Load(),
		PeerProbes:    rt.peerProbes.Load(),
		PeerHits:      rt.peerHits.Load(),
		PendingRouted: pending,
	}
}

// aliveNodes returns the node IDs not marked down, sorted.
func (rt *Router) aliveNodes() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.cfg.Nodes))
	for _, n := range rt.ring.nodes {
		if !rt.down[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
