package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/fleet/gossip"
	"jvmgc/internal/labd"
	"jvmgc/internal/telemetry"
)

// Fault-injection sites the router carries (internal/faultinject). All
// are inert unless Config.Chaos arms them.
const (
	// FaultNodeKill kills the forward's target node: Config.KillHook is
	// invoked with the target's ID (the chaos test closes that node's
	// listener), and the forward then fails for real, exercising the
	// mark-down → re-route failover path end to end.
	FaultNodeKill = "fleet/node.kill"
	// FaultRoutePartition fails a forward as if the network between this
	// router and the target dropped: the request is never sent, the
	// target is marked down, and the job re-routes.
	FaultRoutePartition = "fleet/route.partition"
	// FaultHandoffAbort drops one key's push during the graceful-leave
	// handoff. Correctness survives — the successor recomputes or
	// peer-fetches on demand — the handoff only pre-warms.
	FaultHandoffAbort = "fleet/handoff.abort"
)

// routedHeader marks a request already placed by a router. A node
// receiving it serves the job locally, whatever the ring says — the
// sender is authoritative for placement — which is what makes failover
// re-routes terminate instead of looping between two routers with
// different views of membership. It also marks the spec-key header
// (labd.HeaderSpecKey) trustworthy: the router computed the key for
// placement and carries it along, so the owning daemon never re-derives
// it.
const routedHeader = labd.HeaderRouted

// Config parameterizes a Router.
type Config struct {
	// Self is this node's ID — the Nodes entry whose jobs are served by
	// the local daemon instead of forwarded. Empty means a standalone
	// router fronting the fleet without a daemon of its own.
	Self string
	// Nodes maps node ID → base URL ("http://host:port") for the boot
	// membership, including Self (its URL is what peers use). With a
	// gossiper attached this is only the starting view; live membership
	// replaces it through SetMembership.
	Nodes map[string]string
	// Vnodes is the virtual-node count per node (<=0 = default 128).
	Vnodes int
	// LoadFactor is the bounded-load multiplier: a node may hold at most
	// ceil(LoadFactor · mean pending) routed jobs before placement
	// slides to the next arc. <=1 disables the bound (pure consistent
	// hashing). Default 1.25 — the classic "power of bounded loads"
	// setting: near-minimal remapping with a hard cap on hot-shard
	// pileup.
	LoadFactor float64
	// HTTPClient is the forwarding transport (default: a pooled
	// keep-alive client with a 2-minute timeout, matched to the daemon's
	// default job timeout).
	HTTPClient *http.Client
	// Chaos arms the router's fault sites; nil is a no-op.
	Chaos *faultinject.Injector
	// KillHook is invoked with the target node's ID when FaultNodeKill
	// fires; chaos tests use it to actually take the node down.
	KillHook func(node string)
	// ReprobeBase/ReprobeMax bound the jittered exponential backoff of
	// the background re-probe that revives a marked-down node (defaults
	// 500ms / 30s). Without it a single transport hiccup would quarantine
	// a node until something happened to call Health().
	ReprobeBase time.Duration
	ReprobeMax  time.Duration
	// AfterLeave runs (on its own goroutine) once a POST /v1/fleet/leave
	// has fully drained — the daemon wires process shutdown here.
	AfterLeave func()
}

// defaultForwardClient is the process-wide forwarding client shared by
// routers whose Config leaves HTTPClient nil.
var defaultForwardClient = &http.Client{
	Timeout: 2 * time.Minute,
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 128,
		IdleConnTimeout:     90 * time.Second,
	},
}

func (c Config) withDefaults() Config {
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.HTTPClient == nil {
		// All routers in a process share one connection pool: forwards
		// are peer-to-peer and bursty, so idle keep-alive connections to
		// each peer matter more than per-router isolation. Default pool
		// limits (2 idle conns per host) would close most connections on
		// release under concurrent forwarding.
		c.HTTPClient = defaultForwardClient
	}
	if c.ReprobeBase <= 0 {
		c.ReprobeBase = 500 * time.Millisecond
	}
	if c.ReprobeMax <= 0 {
		c.ReprobeMax = 30 * time.Second
	}
	return c
}

// view is one immutable membership snapshot: the placement ring, the
// node URLs it routes to, and the epoch that names it. Routers never
// mutate a view — a membership change builds a new one and swaps the
// pointer, so every in-flight request keeps the ring it started with
// while new requests see the new epoch, with no lock on the hot path.
type view struct {
	epoch uint64
	ring  *Ring
	urls  map[string]string
}

// Router places jobs on their ring owners and serves the fleet rollup.
// It implements labd.PeerFetcher, so the local daemon's cache gains the
// peer tier when wired via labd.Config.Peers.
type Router struct {
	cfg  Config
	view atomic.Pointer[view]

	// g is the live-membership gossiper (nil = static fleet). Attach
	// before Handler(); the gossip endpoints mount under /v1/gossip/.
	g *gossip.Gossiper

	// local is the co-resident daemon (nil for a standalone router);
	// localH its handler, served on the self fast path so local jobs
	// never cross a socket.
	local  *labd.Server
	localH http.Handler

	mu        sync.Mutex
	down      map[string]bool
	pending   map[string]int  // routed jobs in flight per node (bounded load)
	reprobing map[string]bool // nodes with a live re-probe loop
	closed    bool

	done chan struct{}
	wg   sync.WaitGroup

	leaveOnce sync.Once
	leaveErr  error

	rngState atomic.Uint64 // jitter for re-probe and handoff backoff

	forwards   atomic.Int64 // jobs forwarded to a peer
	localJobs  atomic.Int64 // jobs placed on the local daemon
	reroutes   atomic.Int64 // placements retried after a node failure
	marksDown  atomic.Int64 // node-down transitions observed
	revivals   atomic.Int64 // nodes revived by the background re-probe
	epochSwaps atomic.Int64 // membership views swapped in
	kills      atomic.Int64 // FaultNodeKill firings
	partitions atomic.Int64 // FaultRoutePartition firings
	peerHits   atomic.Int64 // peer cache fetches that returned bytes
	peerProbes atomic.Int64 // peer cache fetch attempts
}

// New builds a router over the given boot membership.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: no nodes configured")
	}
	if cfg.Self != "" {
		if _, ok := cfg.Nodes[cfg.Self]; !ok {
			return nil, fmt.Errorf("fleet: self %q not in node set", cfg.Self)
		}
	}
	v, err := buildView(0, cfg.Nodes, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:       cfg,
		down:      make(map[string]bool),
		pending:   make(map[string]int),
		reprobing: make(map[string]bool),
		done:      make(chan struct{}),
	}
	rt.rngState.Store(hashString(cfg.Self) | 1)
	rt.view.Store(v)
	return rt, nil
}

// buildView constructs an immutable view from a membership set.
func buildView(epoch uint64, urls map[string]string, vnodes int) (*view, error) {
	ids := make([]string, 0, len(urls))
	own := make(map[string]string, len(urls))
	for id, u := range urls {
		ids = append(ids, id)
		own[id] = u
	}
	ring := NewRing(ids, vnodes)
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	return &view{epoch: epoch, ring: ring, urls: own}, nil
}

// jitter returns a uniform duration in [0, d) — full jitter, so a herd
// of routers backing off together spreads out instead of thundering.
func (rt *Router) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	z := rt.rngState.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return time.Duration(z % uint64(d))
}

// SetLocal attaches the co-resident daemon. Separate from New because
// the daemon and router reference each other (the daemon's peer cache
// tier is the router): build the router, pass it as labd.Config.Peers,
// then attach the daemon here.
func (rt *Router) SetLocal(s *labd.Server) {
	rt.local = s
	rt.localH = s.Handler()
}

// AttachGossip wires the live-membership gossiper. The gossiper should
// be constructed with OnUpdate: rt.SetMembership so placement follows
// membership; attach before Handler() so /v1/gossip/* is mounted.
func (rt *Router) AttachGossip(g *gossip.Gossiper) { rt.g = g }

// Gossip returns the attached gossiper (nil for a static fleet).
func (rt *Router) Gossip() *gossip.Gossiper { return rt.g }

// rec returns the local daemon's recorder; nil (a no-op recorder) for a
// standalone router.
func (rt *Router) rec() *telemetry.Recorder {
	if rt.local == nil {
		return nil
	}
	return rt.local.Recorder()
}

// Ring exposes the current placement ring (for tests and the fleet
// dashboard). The pointer is a snapshot: a concurrent membership change
// swaps the router's view but never mutates a ring already handed out.
func (rt *Router) Ring() *Ring { return rt.view.Load().ring }

// Epoch returns the current membership epoch (0 for a static fleet).
func (rt *Router) Epoch() uint64 { return rt.view.Load().epoch }

// SetMembership atomically replaces the placement view — gossip's
// OnUpdate callback. In-flight requests keep the old view; requests
// that start after the swap place on the new ring. Mark-down and
// pending-load state for departed nodes is pruned so a node that
// rejoins later starts clean.
func (rt *Router) SetMembership(epoch uint64, urls map[string]string) {
	v, err := buildView(epoch, urls, rt.cfg.Vnodes)
	if err != nil {
		// An invalid membership (fleet grew past the ring's node bound)
		// cannot be placed; keep routing on the last good view.
		return
	}
	rt.view.Store(v)
	rt.epochSwaps.Add(1)
	rt.mu.Lock()
	for id := range rt.down {
		if _, ok := v.urls[id]; !ok {
			delete(rt.down, id)
		}
	}
	for id := range rt.pending {
		if _, ok := v.urls[id]; !ok {
			delete(rt.pending, id)
		}
	}
	rt.mu.Unlock()
}

// Close stops the router's background work (re-probe loops, and the
// leave path if one is running waits for drain elsewhere).
func (rt *Router) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.done)
	rt.wg.Wait()
}

// MarkDown records a node as unavailable; placement skips it until it
// is revived — by MarkUp, a successful Health() probe, or the jittered
// background re-probe MarkDown itself schedules. The re-probe is what
// keeps a quarantine temporary: a node marked down by one transport
// hiccup rejoins placement on its own, no operator action needed.
func (rt *Router) MarkDown(node string) {
	rt.mu.Lock()
	was := rt.down[node]
	rt.down[node] = true
	spawn := !rt.reprobing[node] && !rt.closed
	if spawn {
		rt.reprobing[node] = true
		rt.wg.Add(1)
	}
	rt.mu.Unlock()
	if !was {
		rt.marksDown.Add(1)
	}
	if spawn {
		go rt.reprobeLoop(node)
	}
}

// reprobeLoop probes a marked-down node's /healthz with jittered
// exponential backoff until the node answers (MarkUp), leaves the
// membership, is revived by someone else, or the router closes.
func (rt *Router) reprobeLoop(node string) {
	defer rt.wg.Done()
	defer func() {
		rt.mu.Lock()
		delete(rt.reprobing, node)
		rt.mu.Unlock()
	}()
	backoff := rt.cfg.ReprobeBase
	for {
		select {
		case <-rt.done:
			return
		case <-time.After(rt.jitter(backoff) + backoff/4):
		}
		if !rt.Down(node) {
			return // revived by Health() or gossip in the meantime
		}
		url, ok := rt.view.Load().urls[node]
		if !ok {
			return // no longer a member; nothing to revive
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		h := rt.probeHealth(ctx, url)
		cancel()
		if h != nil && h.Status == "ok" {
			rt.MarkUp(node)
			rt.revivals.Add(1)
			return
		}
		if backoff *= 2; backoff > rt.cfg.ReprobeMax {
			backoff = rt.cfg.ReprobeMax
		}
	}
}

// MarkUp records a node as available again.
func (rt *Router) MarkUp(node string) {
	rt.mu.Lock()
	delete(rt.down, node)
	rt.mu.Unlock()
}

// Down reports whether a node is currently marked down.
func (rt *Router) Down(node string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.down[node]
}

func (rt *Router) acquire(node string, n int) {
	rt.mu.Lock()
	rt.pending[node] += n
	rt.mu.Unlock()
}

func (rt *Router) release(node string, n int) {
	rt.mu.Lock()
	if rt.pending[node] -= n; rt.pending[node] <= 0 {
		delete(rt.pending, node)
	}
	rt.mu.Unlock()
}

// pick places a key: the first alive candidate in ring order whose
// pending load is under the bounded-load cap, falling back to the first
// alive candidate when every node is at the bound. Returns "" when the
// whole fleet is down. Allocation-free (benchmarked): the walk is
// inlined with a bitmask visited set rather than using Ring.Walk, whose
// closure argument would allocate per placement. Placement reads one
// view snapshot, so a concurrent membership swap cannot tear it.
func (rt *Router) pick(key string) string {
	return rt.pickHash(finalize(hashString(key)))
}

// pickHash is pick for callers that already finalized the key's hash:
// the submit path hashes its stack-buffer key once and re-picks on the
// same hash across failover attempts.
func (rt *Router) pickHash(h uint64) string {
	r := rt.view.Load().ring
	if len(r.points) == 0 {
		return ""
	}
	start := r.startHash(h)
	rt.mu.Lock()
	defer rt.mu.Unlock()

	alive, total := 0, 0
	for _, n := range r.nodes {
		if !rt.down[n] {
			alive++
			total += rt.pending[n]
		}
	}
	if alive == 0 {
		return ""
	}
	bound := math.MaxInt
	if rt.cfg.LoadFactor > 1 {
		bound = int(math.Ceil(rt.cfg.LoadFactor * float64(total+1) / float64(alive)))
		if bound < 1 {
			bound = 1
		}
	}

	var visited uint64
	offered := 0
	fallback := ""
	for i := 0; i < len(r.points) && offered < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		offered++
		n := r.nodes[p.node]
		if rt.down[n] {
			continue
		}
		if fallback == "" {
			fallback = n
		}
		if rt.pending[n] < bound {
			return n
		}
	}
	return fallback
}

// injectTransport runs the router's chaos sites for one forward to
// node. A node-kill invokes the hook (which takes the node down for
// real) and lets the forward fail naturally; a partition fails the
// forward before it is sent.
func (rt *Router) injectTransport(node string) error {
	if rt.cfg.Chaos.Fire(FaultNodeKill) {
		rt.kills.Add(1)
		if rt.cfg.KillHook != nil {
			rt.cfg.KillHook(node)
		}
	}
	if err := rt.cfg.Chaos.Error(FaultRoutePartition); err != nil {
		rt.partitions.Add(1)
		return err
	}
	return nil
}

// maxPeerProbes bounds how many peers a cache fetch asks. The key's
// previous owner is almost always within the first ring successors
// (membership changes slide ownership one arc over), so probing deeper
// buys little and costs a round trip per miss.
const maxPeerProbes = 2

// Fetch implements labd.PeerFetcher: ask the key's ring successors
// (skipping self) for cached result bytes, verifying the SHA-256 the
// peer advertises before trusting bytes that crossed the network. A
// false return sends the local daemon to recompute — peer fetching is
// an optimization, never a correctness dependency.
func (rt *Router) Fetch(ctx context.Context, key string) ([]byte, bool) {
	v := rt.view.Load()
	r := v.ring
	if len(r.points) == 0 {
		return nil, false
	}
	start := r.start(key)
	var visited uint64
	offered, probes := 0, 0
	for i := 0; i < len(r.points) && offered < len(r.nodes) && probes < maxPeerProbes; i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		offered++
		n := r.nodes[p.node]
		if n == rt.cfg.Self || rt.Down(n) {
			continue
		}
		probes++
		rt.peerProbes.Add(1)
		if b, ok := rt.fetchFrom(ctx, v.urls[n], n, key); ok {
			rt.peerHits.Add(1)
			return b, true
		}
	}
	return nil, false
}

// connectionRefused classifies a transport error for mark-down: true
// for connection-level failures (refused, reset, DNS — the node or its
// socket is gone), false for timeouts — a slow peer is not a dead peer,
// and conflating the two is how one overloaded cache probe used to
// quarantine a healthy node.
func connectionRefused(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// fetchFrom asks one peer for one key (GET /v1/cache/{key}). Only a
// connection-level failure marks the peer down: an HTTP error, a slow
// or broken body, or a digest mismatch is a failed *fetch*, not a dead
// *node* — the probe itself proved something is listening.
func (rt *Router) fetchFrom(ctx context.Context, url, node, key string) ([]byte, bool) {
	if err := rt.injectTransport(node); err != nil {
		rt.MarkDown(node)
		return nil, false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		if connectionRefused(err) {
			rt.MarkDown(node)
		}
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A clean miss (404) — or any HTTP-level rejection — proves the
		// node alive; placement keeps it.
		return nil, false
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		// Mid-body failure: the connection answered, so the node stays
		// placed; this fetch just loses.
		return nil, false
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != resp.Header.Get("X-Labd-Sha256") {
		// Corrupt or truncated transfer; recompute rather than trust it.
		return nil, false
	}
	return body, true
}

// Handler serves the fleet surface: job submission (routed), gossip
// endpoints (when a gossiper is attached), membership operations, the
// /fleet/* observability rollup, and — when a local daemon is attached —
// everything else (job status, results, metrics, health) from the local
// daemon unchanged. Call after AttachGossip.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/cache/keys", rt.handleCacheKeys)
	mux.HandleFunc("POST /v1/fleet/leave", rt.handleLeave)
	mux.HandleFunc("GET /fleet/state", rt.handleFleetState)
	mux.HandleFunc("GET /fleet/metrics", rt.handleFleetMetrics)
	mux.HandleFunc("GET /fleet/slo", rt.handleFleetSLO)
	mux.HandleFunc("GET /fleet/traces", rt.handleFleetTraces)
	mux.HandleFunc("GET /fleet/nodes", rt.handleFleetNodes)
	if rt.g != nil {
		mux.Handle("POST /v1/gossip/", rt.g.Handler())
	}
	mux.HandleFunc("/", rt.handleFallthrough)
	return mux
}

func (rt *Router) handleFallthrough(w http.ResponseWriter, r *http.Request) {
	if rt.localH != nil {
		rt.localH.ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" && r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Role   string `json:"role"`
		}{"ok", "router"})
		return
	}
	writeError(w, http.StatusNotFound,
		errors.New("fleet: standalone router: only /v1/jobs, /v1/jobs/batch and /fleet/* are served"))
}

// handleCacheKeys lists the local daemon's cached keys — all of them,
// or with ?arc=<nodeID> only the keys that node would own in a ring
// extended with it. A joiner warming up asks each member
// /v1/cache/keys?arc=<joiner> and receives exactly its future arc,
// computed here, next to the data, instead of shipping every key list
// across the network to filter at the joiner.
func (rt *Router) handleCacheKeys(w http.ResponseWriter, r *http.Request) {
	if rt.local == nil {
		writeJSON(w, http.StatusOK, struct {
			Keys []string `json:"keys"`
		}{[]string{}})
		return
	}
	keys := rt.local.CacheKeys()
	if arc := r.URL.Query().Get("arc"); arc != "" {
		v := rt.view.Load()
		ids := make([]string, 0, len(v.urls)+1)
		seen := false
		for id := range v.urls {
			if id == arc {
				seen = true
			}
			ids = append(ids, id)
		}
		if !seen {
			ids = append(ids, arc)
		}
		candidate := NewRing(ids, rt.cfg.Vnodes)
		filtered := keys[:0]
		for _, k := range keys {
			if candidate.Lookup(k) == arc {
				filtered = append(filtered, k)
			}
		}
		keys = filtered
	}
	writeJSON(w, http.StatusOK, struct {
		Keys []string `json:"keys"`
	}{keys})
}

// withRetry runs f with full-jitter backoff — the warm-up and handoff
// I/O policy: a membership change is exactly when the network is busy,
// so failed pushes spread their retries.
func (rt *Router) withRetry(ctx context.Context, attempts int, base, max time.Duration, f func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = f(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		backoff := base << uint(i)
		if backoff > max {
			backoff = max
		}
		select {
		case <-time.After(rt.jitter(backoff) + time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}

// JoinAndWarm joins a running fleet through the seed URLs and warms this
// node's future arc before taking placement: fetch the membership
// snapshot, learn the ring, pull the arc's cached keys from their
// current owners (SHA-verified), and only then announce. The fleet
// routes to this node only after the announce, so a join never exposes
// a cold cache to traffic it wasn't serving before.
func (rt *Router) JoinAndWarm(ctx context.Context, seeds []string) error {
	if rt.g == nil {
		return errors.New("fleet: JoinAndWarm requires an attached gossiper")
	}
	if err := rt.g.Join(ctx, seeds); err != nil {
		return fmt.Errorf("fleet: join: %w", err)
	}
	// The join snapshot fired SetMembership (self excluded — not yet
	// announced). Everything this node would own in the grown ring is
	// currently owned by these members; pull it over.
	v := rt.view.Load()
	ids := make([]string, 0, len(v.urls))
	for id := range v.urls {
		if id != rt.cfg.Self {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	warmed := 0
	if rt.local != nil {
		for _, id := range ids {
			keys, err := rt.fetchArcKeys(ctx, v.urls[id], rt.cfg.Self)
			if err != nil {
				continue // warm-up is best-effort; the peer tier catches misses
			}
			for _, key := range keys {
				if b, ok := rt.fetchFrom(ctx, v.urls[id], id, key); ok {
					rt.local.WarmCache(key, b)
					warmed++
				}
			}
		}
	}
	rt.rec().Add("fleet.gossip.warmup.keys", int64(warmed))
	rt.g.Announce(ctx)
	return nil
}

// fetchArcKeys asks one member for the keys this node's arc would own.
func (rt *Router) fetchArcKeys(ctx context.Context, url, arc string) ([]string, error) {
	var keys []string
	err := rt.withRetry(ctx, 3, 50*time.Millisecond, time.Second, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			url+"/v1/cache/keys?arc="+arc, nil)
		if err != nil {
			return err
		}
		resp, err := rt.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fleet: cache keys: status %d", resp.StatusCode)
		}
		var body struct {
			Keys []string `json:"keys"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
			return err
		}
		keys = body.Keys
		return nil
	})
	return keys, err
}

// Leave departs the fleet gracefully: broadcast the intent (the fleet
// re-rings without this node), hand the local cache's keys to their new
// owners, then drain in-flight jobs. Request flow during the sequence
// never fails client-visibly — until the broadcast lands peers still
// route here and are served; after it they route around; the handoff
// pre-warms the successors so the arc's hit rate survives the exit; and
// the drain finishes everything already accepted. Idempotent: a second
// Leave waits for the first.
func (rt *Router) Leave(ctx context.Context) error {
	rt.leaveOnce.Do(func() { rt.leaveErr = rt.doLeave(ctx) })
	return rt.leaveErr
}

func (rt *Router) doLeave(ctx context.Context) error {
	if rt.g != nil {
		rt.g.Leave(ctx)
	}
	// Handoff: push every locally cached key to its owner in the
	// post-leave ring. Best-effort per key (the chaos site models a push
	// dying mid-handoff): a dropped key costs the successor one
	// recompute, never correctness.
	if rt.local != nil {
		v := rt.view.Load()
		if v.ring.Len() > 0 {
			handed := 0
			for _, key := range rt.local.CacheKeys() {
				owner := v.ring.Lookup(key)
				if owner == "" || owner == rt.cfg.Self {
					continue
				}
				if rt.cfg.Chaos.Fire(FaultHandoffAbort) {
					rt.rec().Add("fleet.gossip.handoff.aborts", 1)
					continue
				}
				if rt.pushKey(ctx, v.urls[owner], key) == nil {
					handed++
				}
			}
			rt.rec().Add("fleet.gossip.handoff.keys", int64(handed))
		}
		if err := rt.local.Drain(ctx); err != nil {
			return fmt.Errorf("fleet: leave: drain: %w", err)
		}
	}
	return nil
}

// pushKey PUTs one cached result to a successor, digest attached.
func (rt *Router) pushKey(ctx context.Context, url, key string) error {
	body, ok := rt.local.CachePeek(key)
	if !ok {
		return errors.New("fleet: key evicted mid-handoff")
	}
	sum := sha256.Sum256(body)
	digest := hex.EncodeToString(sum[:])
	return rt.withRetry(ctx, 3, 50*time.Millisecond, time.Second, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut,
			url+"/v1/cache/"+key, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Labd-Sha256", digest)
		resp, err := rt.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fleet: handoff put: status %d", resp.StatusCode)
		}
		return nil
	})
}

// handleLeave serves POST /v1/fleet/leave: run the graceful departure
// synchronously and confirm once drained, so the caller knows the node
// is safe to stop. AfterLeave (process shutdown) runs after the
// response is on the wire.
func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	if err := rt.Leave(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
		Node   string `json:"node,omitempty"`
		Epoch  uint64 `json:"epoch"`
	}{"left", rt.cfg.Self, rt.Epoch()})
	if rt.cfg.AfterLeave != nil {
		go rt.cfg.AfterLeave()
	}
}

// serveLocal hands a request to the co-resident daemon, restoring the
// already-consumed body.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.localJobs.Add(1)
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	rt.localH.ServeHTTP(w, r)
}

// submitBodyPool recycles submit-request body buffers, mirroring the
// daemon's own pooled reader: under saturation load the router reads
// thousands of bodies per second and each io.ReadAll used to pay a
// doubling growth sequence.
var submitBodyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// readSubmitBody reads a bounded request body into a pooled buffer;
// callers release with releaseSubmitBody once nothing references it.
func readSubmitBody(w http.ResponseWriter, r *http.Request, limit int64) (*[]byte, error) {
	bp := submitBodyPool.Get().(*[]byte)
	b := (*bp)[:0]
	src := http.MaxBytesReader(w, r.Body, limit)
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := src.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			*bp = b[:0]
			submitBodyPool.Put(bp)
			return nil, err
		}
	}
	*bp = b
	return bp, nil
}

func releaseSubmitBody(bp *[]byte) {
	*bp = (*bp)[:0]
	submitBodyPool.Put(bp)
}

// routeSpec derives a spec's content address into keyBuf and places it
// on the current ring, allocation-free — the per-request core of the
// submit path, bench-gated by BenchmarkRouterForward. The key stays a
// stack buffer until a header actually needs a string.
func (rt *Router) routeSpec(spec labd.JobSpec, keyBuf *[64]byte) (string, error) {
	if err := labd.SpecKeyInto(spec, keyBuf); err != nil {
		return "", err
	}
	return rt.pickHash(finalize(hashBytes(keyBuf[:]))), nil
}

// handleSubmit routes one job to its owner: local fast path when the
// owner is this node, forward with failover otherwise. A request
// already routed by a peer is always served locally (see routedHeader).
//
// The spec key is computed exactly once per request — here, into a
// stack buffer — and carried to the owner on labd.HeaderSpecKey: the
// local daemon's zero-allocation fast path answers cache hits from it
// without re-deriving the key, and a forwarded request's owner does the
// same on its side of the wire.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	bp, err := readSubmitBody(w, r, 1<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer releaseSubmitBody(bp)
	body := *bp
	if r.Header.Get(routedHeader) != "" && rt.localH != nil {
		rt.serveLocal(w, r, body)
		return
	}
	var req labd.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Job.Kind == "" {
		var spec labd.JobSpec
		if err := json.Unmarshal(body, &spec); err == nil && spec.Kind != "" {
			req.Job = spec
		}
	}
	var keyBuf [64]byte
	if err := labd.SpecKeyInto(req.Job, &keyBuf); err != nil {
		// Invalid spec: the local daemon produces the canonical 400; a
		// standalone router answers directly.
		if rt.localH != nil {
			rt.serveLocal(w, r, body)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	keyHash := finalize(hashBytes(keyBuf[:]))

	for attempt := 0; attempt < rt.Ring().Len(); attempt++ {
		owner := rt.pickHash(keyHash)
		if owner == "" {
			break
		}
		if attempt > 0 {
			rt.reroutes.Add(1)
		}
		if owner == rt.cfg.Self {
			// Placement decided: mark the request routed and attach the
			// key so the daemon's fast path trusts and reuses it.
			r.Header.Set(routedHeader, "1")
			r.Header.Set(labd.HeaderSpecKey, string(keyBuf[:]))
			rt.serveLocal(w, r, body)
			return
		}
		if rt.forward(w, r, owner, body, keyBuf[:]) {
			return
		}
		// forward marked the owner down; the next pick slides to the
		// key's next arc.
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errors.New("fleet: no nodes available"))
}

// forward proxies one submission to a peer node, carrying the already-
// computed spec key so the owner's daemon skips re-deriving it. False
// reports a transport-level failure (node marked down, job should
// re-route); true means a response — any response — was relayed to the
// client.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, node string, body, key []byte) bool {
	rt.acquire(node, 1)
	defer rt.release(node, 1)
	if err := rt.injectTransport(node); err != nil {
		rt.MarkDown(node)
		return false
	}
	url, ok := rt.view.Load().urls[node]
	if !ok {
		// The node left between pick and forward; re-route.
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		url+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return true
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(routedHeader, "1")
	if len(key) > 0 {
		req.Header.Set(labd.HeaderSpecKey, string(key))
	}
	if tp := r.Header.Get("traceparent"); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		rt.MarkDown(node)
		return false
	}
	defer resp.Body.Close()
	rt.forwards.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", "Location",
		"X-Labd-Job", "X-Labd-Key", "X-Labd-Cache", "X-Labd-Trace", "X-Labd-Node"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// Health probes every placed node's /healthz (the local daemon
// directly), updating the down set from what it finds, and returns the
// readings keyed by node ID (nil entry = unreachable).
func (rt *Router) Health(ctx context.Context) map[string]*labd.HealthStatus {
	v := rt.view.Load()
	out := make(map[string]*labd.HealthStatus, len(v.urls))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, url := range v.urls {
		if id == rt.cfg.Self && rt.local != nil {
			h := rt.local.Health()
			mu.Lock()
			out[id] = &h
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			h := rt.probeHealth(ctx, url)
			mu.Lock()
			out[id] = h
			mu.Unlock()
			if h == nil || h.Status != "ok" {
				rt.MarkDown(id)
			} else {
				rt.MarkUp(id)
			}
		}(id, url)
	}
	wg.Wait()
	return out
}

func (rt *Router) probeHealth(ctx context.Context, url string) *labd.HealthStatus {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return nil
	}
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var h labd.HealthStatus
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h) != nil {
		return nil
	}
	return &h
}

// RouterStats snapshots the router's own counters for /fleet/nodes.
type RouterStats struct {
	Forwards      int64  `json:"forwards"`
	LocalJobs     int64  `json:"local_jobs"`
	Reroutes      int64  `json:"reroutes"`
	MarksDown     int64  `json:"marks_down"`
	Revivals      int64  `json:"revivals"`
	Epoch         uint64 `json:"epoch"`
	EpochSwaps    int64  `json:"epoch_swaps"`
	Kills         int64  `json:"injected_kills"`
	Partitions    int64  `json:"injected_partitions"`
	PeerProbes    int64  `json:"peer_probes"`
	PeerHits      int64  `json:"peer_hits"`
	PendingRouted int    `json:"pending_routed"`
}

// Stats snapshots the router counters.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	pending := 0
	for _, n := range rt.pending {
		pending += n
	}
	rt.mu.Unlock()
	return RouterStats{
		Forwards:      rt.forwards.Load(),
		LocalJobs:     rt.localJobs.Load(),
		Reroutes:      rt.reroutes.Load(),
		MarksDown:     rt.marksDown.Load(),
		Revivals:      rt.revivals.Load(),
		Epoch:         rt.Epoch(),
		EpochSwaps:    rt.epochSwaps.Load(),
		Kills:         rt.kills.Load(),
		Partitions:    rt.partitions.Load(),
		PeerProbes:    rt.peerProbes.Load(),
		PeerHits:      rt.peerHits.Load(),
		PendingRouted: pending,
	}
}

// aliveNodes returns the placed node IDs not marked down, sorted.
func (rt *Router) aliveNodes() []string {
	v := rt.view.Load()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(v.urls))
	for _, n := range v.ring.nodes {
		if !rt.down[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
