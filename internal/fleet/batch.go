package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"jvmgc/internal/labd"
)

// maxShardLine bounds one NDJSON line of a forwarded shard's stream (a
// line embeds a whole result document).
const maxShardLine = 16 << 20

// handleBatch fans a batch out across the fleet: jobs are grouped by
// ring owner, each group is forwarded as a sub-batch (the local group
// runs on the co-resident daemon directly), and completion events are
// merged into one stream as they arrive — the client sees one batch,
// whatever the topology behind it.
//
// Failover is per shard and windowed by completion: when a node dies
// mid-stream, only the jobs whose events had not yet arrived re-route
// to their keys' next ring arcs; everything already delivered stays
// delivered. Determinism makes this safe: a job that ran twice (once on
// the dead node, once on its successor) produced identical bytes both
// times.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.Header.Get(routedHeader) != "" && rt.localH != nil {
		rt.serveLocal(w, r, body)
		return
	}
	var req labd.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("fleet: batch: no jobs"))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	emit := func(ev labd.BatchEvent) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	_ = enc.Encode(labd.BatchHeader{Batch: len(req.Jobs), Node: rt.cfg.Self})
	if flusher != nil {
		flusher.Flush()
	}

	// Content-address every job up front; specs that cannot be keyed
	// cannot be routed and fail immediately.
	keys := make([]string, len(req.Jobs))
	pending := make(map[int]bool, len(req.Jobs))
	for i, spec := range req.Jobs {
		key, err := labd.SpecKey(spec)
		if err != nil {
			if emit(labd.BatchEvent{Index: i, Status: labd.StatusFailed, Error: err.Error()}) != nil {
				return
			}
			continue
		}
		keys[i] = key
		pending[i] = true
	}

	// Placement rounds: shard by owner, stream, re-shard whatever a dead
	// node left unfinished. Each round removes at least one node from
	// the alive set or finishes, so ring-size+1 rounds always suffice.
	for round := 0; len(pending) > 0 && round <= rt.Ring().Len(); round++ {
		if round > 0 {
			rt.reroutes.Add(int64(len(pending)))
		}
		groups := make(map[string][]int)
		idxs := sortedIndices(pending)
		for _, i := range idxs {
			owner := rt.pick(keys[i])
			if owner == "" {
				continue // whole fleet down; fails after the loop
			}
			groups[owner] = append(groups[owner], i)
		}
		if len(groups) == 0 {
			break
		}
		// Buffered for every possible event, so shard workers never block
		// on a client that stopped reading mid-stream.
		msgs := make(chan labd.BatchEvent, len(pending))
		var wg sync.WaitGroup
		for owner, indices := range groups {
			jobs := make([]labd.JobSpec, len(indices))
			for k, i := range indices {
				jobs[k] = req.Jobs[i]
			}
			wg.Add(1)
			if owner == rt.cfg.Self && rt.local != nil {
				go func(indices []int, jobs []labd.JobSpec) {
					defer wg.Done()
					rt.localShard(r, indices, jobs, keys, req.TimeoutSeconds, msgs)
				}(indices, jobs)
			} else {
				go func(owner string, indices []int, jobs []labd.JobSpec) {
					defer wg.Done()
					rt.forwardShard(r, owner, indices, jobs, req.TimeoutSeconds, msgs)
				}(owner, indices, jobs)
			}
		}
		go func() {
			wg.Wait()
			close(msgs)
		}()
		clientGone := false
		for ev := range msgs {
			if !pending[ev.Index] {
				continue
			}
			if ev.Status == labd.StatusFailed && strings.Contains(ev.Error, labd.ErrDraining.Error()) {
				// The job raced a graceful leave: the shard landed after
				// the target stopped intake. Not a failure — the job stays
				// pending and re-routes to the post-leave ring next round.
				continue
			}
			delete(pending, ev.Index)
			if !clientGone && emit(ev) != nil {
				// Keep draining so shard workers finish; jobs keep
				// running and land in their owners' caches.
				clientGone = true
			}
		}
		if clientGone {
			return
		}
	}
	for _, i := range sortedIndices(pending) {
		if emit(labd.BatchEvent{Index: i, Status: labd.StatusFailed,
			Error: "fleet: no nodes available"}) != nil {
			return
		}
	}
}

func sortedIndices(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// disposition renders a finished job's cache disposition from its info.
func disposition(info labd.JobInfo) string {
	switch {
	case info.CacheHit:
		return "hit"
	case info.Coalesced:
		return "coalesced"
	case info.PeerHit:
		return "peer"
	default:
		return "miss"
	}
}

// localShard runs one shard on the co-resident daemon directly — no
// socket, no serialization round-trip. Submitting everything before
// waiting preserves intra-shard coalescing, then each job's completion
// becomes an event as it happens. The content keys were already derived
// once for routing, so submissions reuse them instead of re-hashing.
func (rt *Router) localShard(r *http.Request, indices []int, jobs []labd.JobSpec, keys []string, timeout float64, msgs chan<- labd.BatchEvent) {
	rt.localJobs.Add(int64(len(indices)))
	var wg sync.WaitGroup
	for k, spec := range jobs {
		idx := indices[k]
		j, err := rt.local.SubmitPreKeyed(r.Context(), labd.SubmitRequest{
			Job:            spec,
			TimeoutSeconds: timeout,
		}, keys[idx])
		if err != nil {
			msgs <- labd.BatchEvent{Index: idx, Status: labd.StatusFailed, Error: err.Error()}
			continue
		}
		wg.Add(1)
		go func(idx int, j *labd.Job) {
			defer wg.Done()
			<-j.Done()
			info := j.Info()
			ev := labd.BatchEvent{Index: idx, ID: j.ID, Key: j.Key, Cache: disposition(info)}
			if bytes, err := j.Result(); err != nil {
				ev.Status = labd.StatusFailed
				ev.Error = err.Error()
			} else {
				ev.Status = labd.StatusDone
				ev.Result = bytes
			}
			msgs <- ev
		}(idx, j)
	}
	wg.Wait()
}

// forwardShard streams one shard through a peer node's batch endpoint,
// remapping event indices back into the caller's space. Any transport-
// level failure — connect, mid-stream cut, 5xx — marks the node down
// and returns; the indices whose events never arrived stay pending and
// re-route next round.
func (rt *Router) forwardShard(r *http.Request, node string, indices []int, jobs []labd.JobSpec, timeout float64, msgs chan<- labd.BatchEvent) {
	rt.acquire(node, len(indices))
	defer rt.release(node, len(indices))
	if err := rt.injectTransport(node); err != nil {
		rt.MarkDown(node)
		return
	}
	payload, err := json.Marshal(labd.BatchRequest{Jobs: jobs, TimeoutSeconds: timeout})
	if err != nil {
		for _, i := range indices {
			msgs <- labd.BatchEvent{Index: i, Status: labd.StatusFailed, Error: err.Error()}
		}
		return
	}
	url, ok := rt.view.Load().urls[node]
	if !ok {
		// The node left between pick and forward; the shard re-routes.
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		url+"/v1/jobs/batch", bytes.NewReader(payload))
	if err != nil {
		for _, i := range indices {
			msgs <- labd.BatchEvent{Index: i, Status: labd.StatusFailed, Error: err.Error()}
		}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(routedHeader, "1")
	resp, err := rt.cfg.HTTPClient.Do(req)
	if err != nil {
		rt.MarkDown(node)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= http.StatusInternalServerError {
			rt.MarkDown(node)
			return
		}
		// Deliberate rejection (4xx): retrying elsewhere cannot help.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		msg := strings.TrimSpace(string(body))
		for _, i := range indices {
			msgs <- labd.BatchEvent{Index: i, Status: labd.StatusFailed, Error: msg}
		}
		return
	}
	rt.forwards.Add(int64(len(indices)))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxShardLine)
	if !sc.Scan() {
		rt.MarkDown(node)
		return
	}
	var header labd.BatchHeader
	if json.Unmarshal(sc.Bytes(), &header) != nil {
		rt.MarkDown(node)
		return
	}
	got := 0
	for got < header.Batch && sc.Scan() {
		var ev labd.BatchEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			break
		}
		if ev.Index < 0 || ev.Index >= len(indices) {
			continue
		}
		ev.Index = indices[ev.Index]
		msgs <- ev
		got++
	}
	if got < header.Batch {
		// The stream broke mid-batch (this is how a node kill manifests):
		// the unacked remainder re-routes.
		rt.MarkDown(node)
	}
}
