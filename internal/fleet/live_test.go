package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func healthzOK() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	return mux
}

// TestReprobeRevivesMarkedDownNode: a mark-down is a quarantine, not a
// verdict — the background re-probe must revive a healthy node without
// anyone calling Health().
func TestReprobeRevivesMarkedDownNode(t *testing.T) {
	peer := httptest.NewServer(healthzOK())
	defer peer.Close()

	rt, err := New(Config{
		Self:        "a",
		Nodes:       map[string]string{"a": "http://unused", "b": peer.URL},
		ReprobeBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rt.MarkDown("b")
	if !rt.Down("b") {
		t.Fatal("MarkDown did not take")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.Down("b") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if rt.Down("b") {
		t.Fatal("re-probe never revived a healthy node")
	}
	if st := rt.Stats(); st.Revivals != 1 {
		t.Errorf("revivals = %d, want 1", st.Revivals)
	}
}

// TestReprobeStopsWhenNodeLeavesMembership: the re-probe loop must not
// spin forever on a node that departed the view.
func TestReprobeStopsWhenNodeLeavesMembership(t *testing.T) {
	rt, err := New(Config{
		Self:        "a",
		Nodes:       map[string]string{"a": "http://unused", "b": "http://127.0.0.1:1"},
		ReprobeBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rt.MarkDown("b")
	rt.SetMembership(7, map[string]string{"a": "http://unused"})
	// The swap pruned the down set; the loop notices within a few probes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		rt.mu.Lock()
		live := rt.reprobing["b"]
		rt.mu.Unlock()
		if !live {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("re-probe loop survived its node's departure")
}

// TestPeerFetchMarkDownSemantics pins the mark-down rules for the peer
// cache tier: only a connection-level failure may quarantine a node.
// HTTP-level errors and slow responses prove something is listening.
func TestPeerFetchMarkDownSemantics(t *testing.T) {
	ctx := context.Background()
	key := testKeys(1)[0]

	build := func(peerURL string, timeout time.Duration) *Router {
		rt, err := New(Config{
			Self:  "a",
			Nodes: map[string]string{"a": "http://unused", "b": peerURL},
			// Long reprobe so a mark-down stays observable.
			ReprobeBase: time.Hour, ReprobeMax: time.Hour,
			HTTPClient: &http.Client{Timeout: timeout},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}

	t.Run("http 500 keeps node placed", func(t *testing.T) {
		peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "internal", http.StatusInternalServerError)
		}))
		defer peer.Close()
		rt := build(peer.URL, time.Second)
		if _, ok := rt.Fetch(ctx, key); ok {
			t.Fatal("fetch against a 500 should miss")
		}
		if rt.Down("b") {
			t.Error("HTTP 500 marked the node down; an answering node is alive")
		}
	})

	t.Run("timeout keeps node placed", func(t *testing.T) {
		release := make(chan struct{})
		defer close(release)
		peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-release:
			case <-r.Context().Done():
			}
		}))
		defer peer.Close()
		rt := build(peer.URL, 30*time.Millisecond)
		if _, ok := rt.Fetch(ctx, key); ok {
			t.Fatal("fetch against a stalled peer should miss")
		}
		if rt.Down("b") {
			t.Error("a slow peer was marked down; slow is not dead")
		}
	})

	t.Run("connection refused marks node down", func(t *testing.T) {
		peer := httptest.NewServer(healthzOK())
		peer.Close() // port now refuses
		rt := build(peer.URL, time.Second)
		if _, ok := rt.Fetch(ctx, key); ok {
			t.Fatal("fetch against a closed port cannot hit")
		}
		if !rt.Down("b") {
			t.Error("connection refused did not mark the node down")
		}
	})
}

// TestConcurrentPlacementDuringMembershipChange hammers the placement
// read paths while membership swaps under them — the epoch-tagged
// atomic view is what makes this safe; run under -race.
func TestConcurrentPlacementDuringMembershipChange(t *testing.T) {
	three := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	four := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c", "d": "http://d"}
	valid := map[string]bool{"": true, "a": true, "b": true, "c": true, "d": true}

	rt, err := New(Config{Self: "a", Nodes: three})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	keys := testKeys(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(i+w)%len(keys)]
				if owner := rt.pick(k); !valid[owner] {
					errs <- "pick returned unknown node " + owner
					return
				}
				r := rt.Ring()
				if owner := r.Lookup(k); !valid[owner] {
					errs <- "Lookup returned unknown node " + owner
					return
				}
				r.Walk(k, func(string) bool { return false })
				_ = rt.Stats()
				_ = rt.aliveNodes()
			}
		}(w)
	}
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			rt.SetMembership(uint64(i+1), four)
		} else {
			rt.SetMembership(uint64(i+1), three)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := rt.Epoch(); got != 400 {
		t.Errorf("final epoch = %d, want 400", got)
	}
	if st := rt.Stats(); st.EpochSwaps != 400 {
		t.Errorf("epoch swaps = %d, want 400", st.EpochSwaps)
	}
}

// TestSetMembershipRejectsOversizedRing: an invalid membership (beyond
// the ring's node bound) must keep the last good view rather than
// replace it.
func TestSetMembershipRejectsOversizedRing(t *testing.T) {
	rt, err := New(Config{Self: "a", Nodes: map[string]string{"a": "http://a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	huge := make(map[string]string, maxRingNodes+1)
	for i := 0; i <= maxRingNodes; i++ {
		huge[fmt.Sprintf("n%02d", i)] = "http://x"
	}
	rt.SetMembership(9, huge)
	if rt.Epoch() != 0 {
		t.Fatal("oversized membership replaced the view")
	}
	if rt.Ring().Len() != 1 {
		t.Fatalf("ring len = %d, want the original 1", rt.Ring().Len())
	}
}

// BenchmarkHandoffPlan measures planning a graceful leave's handoff:
// resolving the post-leave owner for every locally cached key. Pure
// ring lookups — allocation-free, so a leave's planning cost is linear
// and tiny even for large caches.
func BenchmarkHandoffPlan(b *testing.B) {
	rt, err := New(Config{Self: "a", Nodes: map[string]string{
		"a": "http://a", "b": "http://b", "c": "http://c", "d": "http://d", "e": "http://e",
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	keys := testKeys(512)
	ring := rt.Ring()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		moved := 0
		for _, k := range keys {
			if owner := ring.Lookup(k); owner != "a" {
				moved++
			}
		}
		if moved == 0 {
			b.Fatal("no keys to hand off")
		}
	}
}
