package fleet_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/fleet"
	"jvmgc/internal/fleet/gossip"
	"jvmgc/internal/labd"
	"jvmgc/internal/labd/client"
)

type gossipNode struct {
	id  string
	ts  *httptest.Server
	rt  *fleet.Router
	srv *labd.Server
	g   *gossip.Gossiper
}

// startGossipFleet brings up a live-membership fleet: every node runs a
// gossiper wired to its router (OnUpdate swaps the ring), tick loops
// started. jobChaos, when non-empty, arms the same fault spec on every
// daemon (e.g. job latency, to stretch a batch across churn events).
func startGossipFleet(t *testing.T, ids []string, interval, suspect time.Duration, jobChaos string) (map[string]*gossipNode, func(victim string)) {
	t.Helper()
	nodes := make(map[string]*gossipNode, len(ids))
	urls := make(map[string]string, len(ids))
	swaps := make(map[string]*handlerSwap, len(ids))
	for _, id := range ids {
		swap := &handlerSwap{}
		ts := httptest.NewServer(swap)
		nodes[id] = &gossipNode{id: id, ts: ts}
		urls[id] = ts.URL
		swaps[id] = swap
	}
	kill := func(victim string) {
		n := nodes[victim]
		n.ts.CloseClientConnections()
		_ = n.ts.Listener.Close()
	}
	for i, id := range ids {
		var chaos *faultinject.Injector
		if jobChaos != "" {
			inj, err := faultinject.Parse(uint64(1000+i), jobChaos)
			if err != nil {
				t.Fatal(err)
			}
			chaos = inj
		}
		rt, err := fleet.New(fleet.Config{Self: id, Nodes: urls, KillHook: kill})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := labd.New(labd.Config{
			Workers:    2,
			QueueDepth: 64,
			NodeID:     id,
			Peers:      rt,
			Chaos:      chaos,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.SetLocal(srv)
		g, err := gossip.New(gossip.Config{
			Self:           id,
			URL:            urls[id],
			Peers:          urls,
			Interval:       interval,
			SuspectTimeout: suspect,
			Rec:            srv.Recorder(),
			OnUpdate:       rt.SetMembership,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.AttachGossip(g)
		swaps[id].set(rt.Handler())
		n := nodes[id]
		n.rt, n.srv, n.g = rt, srv, g
	}
	for _, n := range nodes {
		n.g.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.g.Close()
		}
		for _, n := range nodes {
			n.rt.Close()
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = n.srv.Drain(ctx)
			cancel()
		}
	})
	return nodes, kill
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ringIs reports whether a router's placed set is exactly want.
func ringIs(rt *fleet.Router, want ...string) bool {
	r := rt.Ring()
	if r.Len() != len(want) {
		return false
	}
	for _, id := range want {
		found := false
		r.Walk("probe", func(n string) bool {
			if n == id {
				found = true
				return true
			}
			return false
		})
		if !found {
			return false
		}
	}
	return true
}

// TestFleetChurnByteIdentity is the membership subsystem's acceptance
// test: a fixed-seed sweep streams through a 3-node gossip fleet while
// the fleet reconfigures under it — a fourth node joins and warms up, a
// node is hard-killed, and a node leaves gracefully — and every result
// is byte-identical to a single standalone daemon running the same
// sweep, with zero client-visible failures. Per-job latency chaos
// stretches the batch so the churn lands mid-flight.
func TestFleetChurnByteIdentity(t *testing.T) {
	ctx := context.Background()
	specs := sweepSpecs(24)

	// Ground truth: one standalone daemon, no fleet, no chaos.
	solo, err := labd.New(labd.Config{Workers: 2, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	tsSolo := httptest.NewServer(solo.Handler())
	t.Cleanup(func() {
		tsSolo.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = solo.Drain(ctx)
	})
	want, err := client.New(tsSolo.URL).Batch(ctx, specs, 0, nil)
	if err != nil {
		t.Fatalf("ground-truth batch: %v", err)
	}
	for _, r := range want {
		if r.Err != nil {
			t.Fatalf("ground-truth job %d: %v", r.Index, r.Err)
		}
	}

	nodes, kill := startGossipFleet(t, []string{"a", "b", "c"},
		20*time.Millisecond, 300*time.Millisecond, "labd/job.latency:p=1,delay=30ms")

	// The joiner: its own daemon and router, membership of one, a
	// gossiper in joining mode. It enters the fleet mid-batch via
	// JoinAndWarm against node a as the seed.
	joinSwap := &handlerSwap{}
	tsD := httptest.NewServer(joinSwap)
	t.Cleanup(tsD.Close)
	rtD, err := fleet.New(fleet.Config{Self: "d", Nodes: map[string]string{"d": tsD.URL}})
	if err != nil {
		t.Fatal(err)
	}
	srvD, err := labd.New(labd.Config{Workers: 2, QueueDepth: 64, NodeID: "d", Peers: rtD})
	if err != nil {
		t.Fatal(err)
	}
	rtD.SetLocal(srvD)
	gD, err := gossip.New(gossip.Config{
		Self:           "d",
		URL:            tsD.URL,
		Peers:          map[string]string{"d": tsD.URL},
		Joining:        true,
		Interval:       20 * time.Millisecond,
		SuspectTimeout: 300 * time.Millisecond,
		Rec:            srvD.Recorder(),
		OnUpdate:       rtD.SetMembership,
	})
	if err != nil {
		t.Fatal(err)
	}
	rtD.AttachGossip(gD)
	joinSwap.set(rtD.Handler())
	gD.Start()
	t.Cleanup(func() {
		gD.Close()
		rtD.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srvD.Drain(ctx)
	})

	// Scripted churn, gated on batch progress so each event lands while
	// jobs are still in flight: join at the 4th completion, hard-kill at
	// the 10th, graceful leave at the 16th.
	var churn sync.WaitGroup
	var joinErr, leaveErr error
	events := 0
	onEvent := func(ev labd.BatchEvent) {
		events++
		switch events {
		case 4:
			churn.Add(1)
			go func() {
				defer churn.Done()
				jctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				joinErr = rtD.JoinAndWarm(jctx, []string{nodes["a"].ts.URL})
			}()
		case 10:
			// A crash takes the whole process: the listener AND the tick
			// loop. Killing only the listener would leave c's outbound
			// pings refuting its own suspicion forever — which is SWIM
			// working as designed, not a crash.
			kill("c")
			nodes["c"].g.Close()
		case 16:
			churn.Add(1)
			go func() {
				defer churn.Done()
				lctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				leaveErr = client.New(nodes["b"].ts.URL).Leave(lctx)
			}()
		}
	}

	got, err := client.New(nodes["a"].ts.URL).Batch(ctx, specs, 0, onEvent)
	if err != nil {
		t.Fatalf("fleet batch under churn: %v", err)
	}
	churn.Wait()
	if joinErr != nil {
		t.Fatalf("join during batch: %v", joinErr)
	}
	if leaveErr != nil {
		t.Fatalf("graceful leave during batch: %v", leaveErr)
	}

	// Zero client-visible failures and byte identity with the standalone
	// run, kill and leave notwithstanding.
	if len(got) != len(specs) {
		t.Fatalf("churn batch returned %d results, want %d", len(got), len(specs))
	}
	for i, r := range got {
		if r.Err != nil {
			t.Fatalf("job %d failed under churn: %v", i, r.Err)
		}
		if !bytes.Equal(r.Bytes, want[i].Bytes) {
			t.Errorf("job %d: churn bytes (%d) differ from single-node bytes (%d)",
				i, len(r.Bytes), len(want[i].Bytes))
		}
		if r.Key != want[i].Key {
			t.Errorf("job %d: content key diverged: %s vs %s", i, r.Key, want[i].Key)
		}
	}

	// The fleet converges on the post-churn membership: c dead, b left,
	// d placed — survivors agree on the ring and its epoch.
	waitUntil(t, 10*time.Second, "a to place exactly {a,d}", func() bool {
		return ringIs(nodes["a"].rt, "a", "d")
	})
	waitUntil(t, 10*time.Second, "d to place exactly {a,d}", func() bool {
		return ringIs(rtD, "a", "d")
	})
	waitUntil(t, 10*time.Second, "epochs to agree", func() bool {
		e := nodes["a"].rt.Epoch()
		return e != 0 && e == rtD.Epoch()
	})

	// The graceful leaver recorded its drain and handed off, and the
	// membership registers show one death (c) and one departure (b).
	if st, _, ok := nodes["a"].g.Memberlist().State("b"); !ok || st != gossip.StateLeft {
		t.Errorf("b's register on a = %v (present=%v), want left", st, ok)
	}
	if st, _, ok := nodes["a"].g.Memberlist().State("c"); !ok || st != gossip.StateDead {
		t.Errorf("c's register on a = %v (present=%v), want dead", st, ok)
	}

	// Post-churn, the reshaped fleet still serves the same sweep from
	// cache + handoff + recompute, byte-identical again.
	again, err := client.New(nodes["a"].ts.URL).Batch(ctx, specs, 0, nil)
	if err != nil {
		t.Fatalf("post-churn batch: %v", err)
	}
	for i, r := range again {
		if r.Err != nil {
			t.Fatalf("post-churn job %d: %v", i, r.Err)
		}
		if !bytes.Equal(r.Bytes, want[i].Bytes) {
			t.Errorf("post-churn job %d: bytes differ from single-node run", i)
		}
	}
}
