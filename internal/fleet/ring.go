// Package fleet shards the labd job daemon across nodes, turning N
// independent daemons into one logical service.
//
// Placement is by consistent hash of the job's content address — the
// same SHA-256 the cache keys on — so routing and caching agree about
// ownership: every identical spec, submitted to any node, converges on
// one owner node's one single-flight execution. Membership changes move
// only the keys whose arc changed hands (≈1/N of the space per
// node join or leave), which is exactly the property that keeps the
// fleet's caches warm through topology churn.
//
// The Router embeds in every node (cmd/gclabd -fleet) or runs
// standalone: it forwards POST /v1/jobs and /v1/jobs/batch to each
// job's owner, fails over when a node dies mid-run, implements the
// labd.PeerFetcher cache tier over GET /v1/cache/{key}, and serves the
// fleet-wide observability rollup under /fleet/* (counters summed,
// histograms merged bucket-exactly, SLO windows re-derived, slowest-K
// traces unioned with node labels).
package fleet

import (
	"fmt"
	"sort"
)

// defaultVnodes is the virtual-node count per physical node. More
// vnodes smooth the key distribution (stddev of arc share shrinks like
// 1/sqrt(vnodes)) at the cost of ring size; 128 keeps an 8-node ring's
// imbalance under a few percent while the whole ring stays cache-warm.
const defaultVnodes = 128

// Ring is an immutable consistent-hash ring: node IDs expanded into
// hashed virtual points, sorted around the 64-bit ring. Lookups walk
// clockwise from the key's hash to the first point, so a membership
// change only remaps keys whose nearest point changed — the minimal-
// disruption property the fleet's cache warmth depends on.
//
// Rings are cheap to rebuild; membership changes construct a new Ring
// rather than mutating one, so lookups are lock-free and allocation-free.
type Ring struct {
	nodes  []string // sorted unique node IDs
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int32 // index into nodes
}

// NewRing builds a ring over the given node IDs (order-insensitive,
// duplicates collapsed) with the given virtual-node count per node
// (<=0 selects the default).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, n := range uniq {
		base := hashString(n)
		for v := 0; v < vnodes; v++ {
			// Each vnode point is the node hash stirred with the vnode
			// index through the same splitmix finalizer the key hash
			// uses, so points spread uniformly without per-vnode string
			// formatting.
			r.points = append(r.points, ringPoint{
				hash: finalize(base ^ (uint64(v+1) * 0x9e3779b97f4a7c15)),
				node: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string { return r.nodes }

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// start returns the index of the first ring point at or after the
// key's hash (wrapping past the end).
func (r *Ring) start(key string) int {
	return r.startHash(finalize(hashString(key)))
}

// startHash is start for callers that already finalized the key's hash
// — the router's forward path hashes each key once and reuses it across
// placement attempts.
func (r *Ring) startHash(h uint64) int {
	points := r.points
	// Manual binary search: sort.Search's func parameter would allocate
	// a closure on the lookup hot path, which is benchmarked 0-alloc.
	lo, hi := 0, len(points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		lo = 0
	}
	return lo
}

// Lookup returns the key's owner: the node of the first ring point
// clockwise from the key's hash ("" on an empty ring). Allocation-free.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.start(key)].node]
}

// Walk visits the key's candidate owners in ring order — the owner
// first, then each distinct successor node — until fn returns true
// (accepted) or every node was offered. This is the failover and
// bounded-load order: a router that cannot place a job on its owner
// (dead, partitioned, over the load bound) slides to the next arc,
// and every router sliding the same way keeps placement deterministic.
func (r *Ring) Walk(key string, fn func(node string) bool) {
	if len(r.points) == 0 {
		return
	}
	start := r.start(key)
	var visited uint64 // bitmask over node indices; rings are ≤64 nodes
	offered := 0
	for i := 0; i < len(r.points) && offered < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		bit := uint64(1) << uint(p.node)
		if visited&bit != 0 {
			continue
		}
		visited |= bit
		offered++
		if fn(r.nodes[p.node]) {
			return
		}
	}
}

// maxRingNodes bounds the fleet size: Walk tracks visited nodes in one
// 64-bit mask so candidate iteration stays allocation-free.
const maxRingNodes = 64

// Validate rejects rings the Walk bitmask cannot cover.
func (r *Ring) Validate() error {
	if len(r.nodes) > maxRingNodes {
		return fmt.Errorf("fleet: %d nodes exceeds ring limit %d", len(r.nodes), maxRingNodes)
	}
	return nil
}

// hashString is FNV-1a over the string bytes (the repo's standard cheap
// string hash; see internal/faultinject).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashBytes is hashString over a byte slice — same FNV-1a sequence, so
// hashBytes(k) == hashString(string(k)) without the conversion
// allocation. The router's submit path derives keys into stack buffers
// and hashes them here.
func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// finalize is the splitmix64 finalizer: FNV output is well-distributed
// in the low bits but the ring needs uniformity across all 64.
func finalize(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}
