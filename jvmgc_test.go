package jvmgc_test

import (
	"strings"
	"testing"
	"time"

	"jvmgc"
)

func TestCollectorsAndBenchmarks(t *testing.T) {
	cols := jvmgc.Collectors()
	if len(cols) != 6 || cols[0] != "Serial" || cols[5] != "G1" {
		t.Errorf("Collectors = %v", cols)
	}
	if len(jvmgc.Benchmarks()) != 14 {
		t.Errorf("Benchmarks = %v", jvmgc.Benchmarks())
	}
	if len(jvmgc.StableBenchmarks()) != 7 {
		t.Errorf("StableBenchmarks = %v", jvmgc.StableBenchmarks())
	}
}

func TestSimulateBasic(t *testing.T) {
	res, err := jvmgc.Simulate(jvmgc.SimulationConfig{
		Collector:        "ParallelOld",
		HeapBytes:        4 << 30,
		AllocBytesPerSec: 800e6,
		Seed:             1,
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pauses) == 0 {
		t.Fatal("no pauses on a small heap at 800MB/s")
	}
	if res.TotalPause <= 0 || res.MaxPause <= 0 {
		t.Error("pause aggregates empty")
	}
	if !strings.Contains(res.LogText, "GC") {
		t.Error("log text empty")
	}
	for _, p := range res.Pauses {
		if p.Duration <= 0 || p.Kind == "" || p.Cause == "" {
			t.Fatalf("malformed pause %+v", p)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := jvmgc.Simulate(jvmgc.SimulationConfig{}, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := jvmgc.Simulate(jvmgc.SimulationConfig{Collector: "ZGC"}, time.Second); err == nil {
		t.Error("unknown collector accepted")
	}
	if _, err := jvmgc.Simulate(jvmgc.SimulationConfig{
		ShortLivedFraction: 0.8, ShortLifetime: time.Second,
		MediumLivedFraction: 0.5, MediumLifetime: time.Second,
	}, time.Second); err == nil {
		t.Error("invalid demographics accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() string {
		res, err := jvmgc.Simulate(jvmgc.SimulationConfig{
			Collector: "CMS", HeapBytes: 4 << 30, AllocBytesPerSec: 900e6, Seed: 5,
		}, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.LogText
	}
	if run() != run() {
		t.Error("Simulate not deterministic")
	}
}

func TestRunBenchmarkFacade(t *testing.T) {
	res, err := jvmgc.RunBenchmark(jvmgc.BenchmarkOptions{Benchmark: "xalan", Collector: "G1", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterationSeconds) != 10 {
		t.Errorf("iterations = %d", len(res.IterationSeconds))
	}
	if res.FullGCs < 9 {
		t.Errorf("full GCs = %d with default system GC", res.FullGCs)
	}
	if _, err := jvmgc.RunBenchmark(jvmgc.BenchmarkOptions{Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := jvmgc.RunBenchmark(jvmgc.BenchmarkOptions{Benchmark: "eclipse"}); err == nil {
		t.Error("crashing benchmark did not error")
	}
}

func TestRunClientServerFacade(t *testing.T) {
	res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
		Collector: "CMS",
		Duration:  30 * time.Minute,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Read.N == 0 || res.Update.N == 0 {
		t.Fatal("no client operations")
	}
	if res.Update.NormalReqsPct < 90 {
		t.Errorf("update normal band = %.1f%%", res.Update.NormalReqsPct)
	}
	if len(res.Read.Exceedance) == 0 {
		t.Error("no exceedance bands")
	}
	if len(res.Ops) == 0 || len(res.ServerPauses) == 0 {
		t.Error("missing raw series")
	}
	if _, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{Collector: "Epsilon"}); err == nil {
		t.Error("unknown collector accepted")
	}
}

func TestStressModeReplays(t *testing.T) {
	res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
		Collector: "G1",
		Stress:    true,
		Duration:  20 * time.Minute,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplaySeconds <= 0 {
		t.Error("stress mode skipped the commitlog replay")
	}
	if res.TotalSeconds <= res.ReplaySeconds {
		t.Error("total excludes client phase")
	}
}

func TestReproducePaperQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation in -short mode")
	}
	rep, err := jvmgc.ReproducePaper(42, true)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, want := range []string{"Table 2", "Table 8", "Figure 3a"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if got := rep.Verdicts(); len(got.Rows) != 6 {
		t.Errorf("verdicts = %d", len(got.Rows))
	}
}

func TestRunClusterFacade(t *testing.T) {
	res, err := jvmgc.RunCluster(jvmgc.ClusterOptions{
		Collector: "CMS",
		Stress:    true,
		Duration:  30 * time.Minute,
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.One.N == 0 || res.Quorum.N == 0 || res.All.N == 0 {
		t.Fatal("missing level reports")
	}
	// Masking order: ONE <= QUORUM <= ALL on the worst case.
	if !(res.One.MaxMS <= res.Quorum.MaxMS+1e-9 && res.Quorum.MaxMS <= res.All.MaxMS+1e-9) {
		t.Errorf("masking order violated: %.1f / %.1f / %.1f",
			res.One.MaxMS, res.Quorum.MaxMS, res.All.MaxMS)
	}
	if _, err := jvmgc.RunCluster(jvmgc.ClusterOptions{Collector: "Azul"}); err == nil {
		t.Error("unknown collector accepted")
	}
}

func TestSimulateTraceFacade(t *testing.T) {
	trace := strings.NewReader("seconds,alloc_bytes_per_sec\n0,100000000\n30,900000000\n60,50000000\n")
	res, err := jvmgc.SimulateTrace(jvmgc.SimulationConfig{
		Collector: "G1", HeapBytes: 4 << 30, Seed: 2,
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pauses) == 0 {
		t.Error("trace replay produced no pauses")
	}
	if _, err := jvmgc.SimulateTrace(jvmgc.SimulationConfig{}, strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAdviseFacade(t *testing.T) {
	advice, err := jvmgc.Advise(jvmgc.AdviseOptions{
		HeapBytes:        8 << 30,
		Threads:          32,
		AllocBytesPerSec: 400e6,
		MaxPause:         500 * time.Millisecond,
		MaxPauseFraction: 0.06,
		EvaluationWindow: 2 * time.Minute,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(advice) != 24 {
		t.Fatalf("advice entries = %d", len(advice))
	}
	if !advice[0].MeetsSLO {
		t.Error("no compliant configuration at this loose SLO")
	}
	if _, err := jvmgc.Advise(jvmgc.AdviseOptions{}); err == nil {
		t.Error("missing heap accepted")
	}
}
