package jvmgc_test

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

// The simplest use: run one simulated JVM against a workload and inspect
// its garbage-collection activity. Everything is deterministic in the
// seed.
func ExampleSimulate() {
	res, err := jvmgc.Simulate(jvmgc.SimulationConfig{
		Collector:        "CMS",
		HeapBytes:        4 << 30, // 4 GiB
		AllocBytesPerSec: 800e6,   // 800 MB/s
		Seed:             7,
	}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMS: %d pauses, %d full\n", len(res.Pauses), res.FullGCs)
	// Output: CMS: 45 pauses, 0 full
}

// Reproduce one of the paper's DaCapo runs: xalan under the default
// collector with a forced full collection between the ten iterations.
func ExampleRunBenchmark() {
	res, err := jvmgc.RunBenchmark(jvmgc.BenchmarkOptions{
		Benchmark: "xalan",
		Collector: "ParallelOld",
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xalan: %d iterations, %d full GCs\n", len(res.IterationSeconds), res.FullGCs)
	// Output: xalan: 10 iterations, 9 full GCs
}

// The six HotSpot collectors the paper studies, in its Table 1 order.
func ExampleCollectors() {
	fmt.Println(jvmgc.Collectors())
	// Output: [Serial ParNew Parallel ParallelOld CMS G1]
}
