// Command paper regenerates every table and figure of "A Performance
// Study of Java Garbage Collectors on Multicore Architectures" from the
// simulation laboratory, printing the evaluation in reading order.
//
// With -out, the per-figure raw series (scatter data for Figures 1, 4 and
// 5) are additionally written to files in the given directory, one file
// per artifact, in a gnuplot-friendly format.
//
// Examples:
//
//	paper                 # full evaluation to stdout
//	paper -quick          # fewer stability repetitions
//	paper -out ./results  # also dump raw figure series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jvmgc"
	"jvmgc/internal/core"
	"jvmgc/internal/profiling"
	"jvmgc/internal/textplot"
	"jvmgc/internal/ycsb"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "shrink stability repetitions for a faster smoke run")
		seed       = flag.Uint64("seed", 42, "random seed (the evaluation is fully deterministic)")
		out        = flag.String("out", "", "directory to write raw figure series into")
		plot       = flag.Bool("plot", false, "render the figures as ASCII scatter plots")
		extended   = flag.Bool("extended", false, "also run the extension studies (nogc, machines, g1sweep, workloads, cluster, ext)")
		par        = flag.Int("parallelism", 0, "worker count for the deterministic work-stealing runner fanning out independent experiments (0 = all cores); output is byte-identical at any setting")
		statsMode  = flag.String("stats-mode", "exact", "client-study statistics mode: exact (retain every sample; reproduces the pinned seed digest) or streaming (bounded-memory histograms, quantiles within 1%)")
		only       = flag.String("only", "", "run a single artifact: t2, f1, f2, t3, t4, f3, f4, f5, t8, nogc (§3.3 statistics), seeds (claim robustness), machines (topology sensitivity), g1sweep (pause-target frontier), workloads (YCSB A-F comparison), cluster (3-node ring extension), ext (HTM future-work study)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the evaluation to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile of the evaluation to this file (go tool pprof)")
	)
	flag.Parse()

	stopCPU, err := profiling.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	finishProfiles := func() {
		stopCPU()
		if err := profiling.WriteHeap(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
		}
	}

	start := time.Now()
	lab := core.NewLab(*seed)
	if *quick {
		lab = core.QuickLab(*seed)
	}
	lab.Parallelism = *par
	switch *statsMode {
	case "exact":
	case "streaming":
		lab.StreamingStats = true
	default:
		fmt.Fprintf(os.Stderr, "paper: unknown -stats-mode %q (want exact or streaming)\n", *statsMode)
		os.Exit(2)
	}

	if *only != "" {
		err := runOne(lab, *only)
		finishProfiles()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}

	rep, err := lab.RunAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	fmt.Println(rep.Render())
	if *plot {
		printPlots(rep)
	}

	if *extended {
		ext, err := lab.RunExtensions()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		fmt.Println(ext.Render())
	}

	if *out != "" {
		if err := dumpSeries(rep, *out); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		fmt.Printf("raw figure series written to %s\n", *out)
	}
	finishProfiles()
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func runOne(lab *core.Lab, id string) error {
	switch id {
	case "t2":
		fmt.Println(lab.TableStability().Render())
	case "f1":
		a, err := lab.FigurePauseScatter("xalan", true)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderPauseScatter(a, "Figure 1a: xalan pauses (system GC)"))
		b, err := lab.FigurePauseScatter("xalan", false)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderPauseScatter(b, "Figure 1b: xalan pauses (no system GC)"))
	case "f2":
		a, err := lab.FigureIterationTimes("xalan", true)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderIterationTimes(a, "Figure 2a: xalan iteration times (system GC)"))
		b, err := lab.FigureIterationTimes("xalan", false)
		if err != nil {
			return err
		}
		fmt.Println(core.RenderIterationTimes(b, "Figure 2b: xalan iteration times (no system GC)"))
	case "t3":
		for _, gc := range []string{"CMS", "ParallelOld"} {
			tab, err := lab.TableHeapYoungSweep("h2", gc, core.Table3Cases())
			if err != nil {
				return err
			}
			fmt.Println(tab.Render())
		}
	case "t4":
		tab, err := lab.TableTLAB()
		if err != nil {
			return err
		}
		fmt.Println(tab.Render())
	case "f3":
		for _, sys := range []bool{true, false} {
			r, err := lab.FigureRanking(sys)
			if err != nil {
				return err
			}
			fmt.Println(r.Render())
		}
	case "f4":
		study, err := lab.ServerPauseStudy()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
		fmt.Println(study.RenderFigure4())
	case "f5":
		exps, err := lab.ClientLatencyStudyAll()
		if err != nil {
			return err
		}
		for _, e := range exps {
			fmt.Println(e.RenderBands())
		}
	case "seeds":
		study, err := core.SeedSensitivityStudy(lab.Seed, 5)
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "workloads":
		study, err := lab.WorkloadComparisonStudy()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "cluster":
		study, err := lab.ClusterStudyAll()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "g1sweep":
		sweep, err := lab.G1PauseTargetSweep(nil)
		if err != nil {
			return err
		}
		fmt.Println(sweep.Render())
	case "machines":
		study, err := lab.MachineSensitivityStudy()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "nogc":
		study, err := lab.NoGCStatisticsStudy()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "ext":
		study, err := lab.ExtensionHTMStudy()
		if err != nil {
			return err
		}
		fmt.Println(study.Render())
	case "t8":
		rep, err := lab.RunAll()
		if err != nil {
			return err
		}
		fmt.Println(rep.Verdicts().Render())
	default:
		return fmt.Errorf("unknown artifact %q", id)
	}
	return nil
}

// printPlots renders the scatter figures as terminal plots.
func printPlots(rep jvmgc.PaperReport) {
	pauseSeries := func(in []core.PauseSeries) []textplot.Series {
		var out []textplot.Series
		for _, s := range in {
			ser := textplot.Series{Name: s.Collector}
			for _, p := range s.Points {
				ser.X = append(ser.X, p.AtSeconds)
				ser.Y = append(ser.Y, p.PauseSeconds)
			}
			out = append(out, ser)
		}
		return out
	}
	sc := textplot.Scatter{Width: 78, Height: 18, XLabel: "execution time (s)", YLabel: "pause (s)"}
	sc.Title = "Figure 1a: xalan GC pauses (system GC between iterations)"
	fmt.Println(sc.Render(pauseSeries(rep.Fig1a)))
	sc.Title = "Figure 1b: xalan GC pauses (no system GC)"
	fmt.Println(sc.Render(pauseSeries(rep.Fig1b)))
	sc.Title = "Figure 4: Cassandra stress pauses"
	sc.XLabel = "elapsed time (s)"
	fmt.Println(sc.Render(pauseSeries(rep.Server.FigureServerPauses())))

	for _, c := range rep.Client {
		var read, update, gc textplot.Series
		read.Name, update.Name, gc.Name = "READ", "UPDATE", "GC"
		read.Glyph, update.Glyph, gc.Glyph = '.', '+', '#'
		for _, op := range c.TopPoints(2000) {
			if op.Type == ycsb.Read {
				read.X = append(read.X, op.Completed)
				read.Y = append(read.Y, op.LatencyMS)
			} else {
				update.X = append(update.X, op.Completed)
				update.Y = append(update.Y, op.LatencyMS)
			}
		}
		for _, p := range c.Pauses() {
			gc.X = append(gc.X, p.Start)
			gc.Y = append(gc.Y, (p.End-p.Start)*1e3)
		}
		f5 := textplot.Scatter{
			Width: 78, Height: 18,
			Title:  "Figure 5: client response time under " + c.Collector + " (top 2000 points)",
			XLabel: "time since experiment start (s)", YLabel: "latency (ms)",
		}
		fmt.Println(f5.Render([]textplot.Series{read, update, gc}))
	}
}

func dumpSeries(rep jvmgc.PaperReport, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	if err := write("figure1a.dat", core.RenderPauseScatter(rep.Fig1a, "# Figure 1a")); err != nil {
		return err
	}
	if err := write("figure1b.dat", core.RenderPauseScatter(rep.Fig1b, "# Figure 1b")); err != nil {
		return err
	}
	if err := write("figure4.dat", rep.Server.RenderFigure4()); err != nil {
		return err
	}
	for _, c := range rep.Client {
		if err := write("figure5-"+c.Collector+".dat", c.RenderFigure5(10000)); err != nil {
			return err
		}
	}
	return nil
}
