// Command gcload drives the labd daemon or a fleet with a
// deterministic, coordinated-omission-safe load generator and reports
// the throughput/latency curve, locating the saturation knee — the
// highest offered rate at which the p99 SLO holds with zero failures.
//
// Three targets:
//
//	-url       an already-running daemon or fleet router, over HTTP
//	-inproc N  an N-node in-process fleet on loopback HTTP, built and
//	           torn down by gcload itself (default, N=1)
//	-virtual   no service at all: a seeded virtual-time queueing model,
//	           byte-identical output for a given seed — the CI anchor
//
// Open-loop mode (default) draws Poisson arrivals from -seed and
// measures every latency from the request's intended start, so a
// stalled service is charged for the backlog it caused; -mode closed
// runs the classic worker-pool generator for contrast.
//
// Examples:
//
//	gcload -inproc 3 -rate-start 500 -rate-step 500 -rate-max 5000
//	gcload -url http://127.0.0.1:8372 -rate 2000 -duration 10s
//	gcload -virtual -seed 42            # deterministic smoke
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"jvmgc/internal/fleet"
	"jvmgc/internal/labd"
	"jvmgc/internal/loadgen"
)

func main() {
	var (
		url      = flag.String("url", "", "target an external daemon/fleet at this base URL")
		inproc   = flag.Int("inproc", 1, "nodes in the self-hosted in-process fleet (when -url is empty)")
		virtual  = flag.Bool("virtual", false, "virtual-time simulation: no service, deterministic output")
		mode     = flag.String("mode", "open", "pacing: open (CO-safe, intended-start latency) or closed")
		rate     = flag.Float64("rate", 0, "fixed offered rate (req/s); 0 sweeps for the knee instead")
		rateLo   = flag.Float64("rate-start", 500, "sweep: first offered rate (req/s)")
		rateStep = flag.Float64("rate-step", 500, "sweep: rate increment (req/s)")
		rateHi   = flag.Float64("rate-max", 8000, "sweep: last offered rate (req/s)")
		stepDur  = flag.Duration("duration", 2*time.Second, "offered-load window per step")
		sloP99   = flag.Duration("slo-p99", 20*time.Millisecond, "p99 latency objective")
		seed     = flag.Uint64("seed", 42, "arrival-schedule seed (step k derives seed+k)")
		workers  = flag.Int("workers", 64, "in-flight request bound (open) / pool size (closed)")
		specs    = flag.Int("specs", 8, "distinct job specs cycled through the run")
		specDur  = flag.Float64("spec-duration", 5, "simulated seconds per job spec")
		ci       = flag.Bool("ci", false, "smoke assertions: zero failed requests, sweep terminates")
	)
	flag.Parse()

	m := loadgen.OpenLoop
	if *mode == "closed" {
		m = loadgen.ClosedLoop
	} else if *mode != "open" {
		fmt.Fprintf(os.Stderr, "gcload: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	opts := loadgen.Options{Mode: m, Workers: *workers}

	var run loadgen.RunStep
	var label string
	switch {
	case *virtual:
		label = "virtual"
		// A seeded M/G/2 stand-in for a warm daemon: ~300µs median
		// service, log-normal tail. Purely arithmetic — two invocations
		// with the same flags print identical bytes.
		run = func(sched loadgen.Schedule) (*loadgen.Result, error) {
			return loadgen.Simulate(sched, 2,
				loadgen.LogNormalService(300*time.Microsecond, 0.5, *seed), opts)
		}
	case *url != "":
		label = *url
		tgt, err := loadgen.NewHTTPTarget(*url, jobSpecs(*specs, *specDur), nil)
		if err != nil {
			fatal(err)
		}
		run = realRun(tgt, opts)
	default:
		baseURL, shutdown, err := startFleet(*inproc, *specs, *specDur)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		label = fmt.Sprintf("inproc:%d", *inproc)
		tgt, err := loadgen.NewHTTPTarget(baseURL, jobSpecs(*specs, *specDur), nil)
		if err != nil {
			fatal(err)
		}
		run = realRun(tgt, opts)
	}

	fmt.Printf("gcload: target=%s mode=%s seed=%d specs=%d slo-p99=%s\n",
		label, m, *seed, *specs, *sloP99)

	if *rate > 0 {
		sched := loadgen.Poisson(*rate, *stepDur, *seed)
		res, err := run(sched)
		if err != nil {
			fatal(err)
		}
		sw := &loadgen.Sweep{}
		sw.Points = append(sw.Points, point(*rate, res, sloP99.Seconds()))
		fmt.Print(sw.Table())
		if *ci && res.Failed > 0 {
			fatal(fmt.Errorf("%d failed requests", res.Failed))
		}
		return
	}

	sw, err := loadgen.FindKnee(loadgen.SweepConfig{
		Start: *rateLo, Step: *rateStep, Max: *rateHi,
		SLOP99:       sloP99.Seconds(),
		StepDuration: *stepDur,
		Seed:         *seed,
	}, run)
	if err != nil {
		fatal(err)
	}
	fmt.Print(sw.Table())
	if sw.Knee > 0 {
		fmt.Printf("knee: %.0f req/s (max sustained rate with p99 <= %s and zero failures)\n",
			sw.Knee, *sloP99)
	} else {
		fmt.Println("knee: none (no step met the SLO)")
	}
	if *ci {
		for _, p := range sw.Points {
			if p.Failed > 0 {
				fatal(fmt.Errorf("rate %.0f: %d failed requests", p.Rate, p.Failed))
			}
		}
		fmt.Println("ci: ok (sweep terminated, zero failed requests)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcload:", err)
	os.Exit(1)
}

func point(rate float64, res *loadgen.Result, slo float64) loadgen.SweepPoint {
	p := loadgen.SweepPoint{
		Rate:       rate,
		Throughput: res.Throughput(),
		P50:        res.Hist.Quantile(50),
		P99:        res.Hist.Quantile(99),
		Max:        res.Hist.Max(),
		Sent:       res.Sent,
		Failed:     res.Failed,
	}
	p.OK = p.Failed == 0 && (slo <= 0 || p.P99 <= slo)
	return p
}

func realRun(tgt loadgen.Target, opts loadgen.Options) loadgen.RunStep {
	return func(sched loadgen.Schedule) (*loadgen.Result, error) {
		return loadgen.Run(context.Background(), sched, tgt, opts)
	}
}

// jobSpecs builds the cycled spec set: identical shape, distinct seeds,
// so each is an independent cache entry and the steady state exercises
// the zero-allocation cache-hit path.
func jobSpecs(n int, durationSec float64) []labd.JobSpec {
	out := make([]labd.JobSpec, n)
	for i := range out {
		out[i] = labd.JobSpec{
			Kind:             labd.KindSimulate,
			Collector:        "ParallelOld",
			HeapBytes:        2 << 30,
			Threads:          8,
			AllocBytesPerSec: 150e6,
			DurationSeconds:  durationSec,
			Seed:             uint64(i) + 1,
		}
	}
	return out
}

// startFleet boots an n-node fleet on loopback HTTP — listeners first
// so every node knows the full membership before any router is built —
// and primes each spec once so the sweep measures the steady state.
// Returns the first node's base URL and a shutdown func.
func startFleet(n, specs int, specDur float64) (string, func(), error) {
	if n < 1 {
		n = 1
	}
	listeners := make([]net.Listener, n)
	nodes := make(map[string]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		listeners[i] = l
		nodes[fmt.Sprintf("n%d", i)] = "http://" + l.Addr().String()
	}
	servers := make([]*http.Server, n)
	daemons := make([]*labd.Server, n)
	for i := 0; i < n; i++ {
		self := fmt.Sprintf("n%d", i)
		var handler http.Handler
		if n == 1 {
			srv, err := labd.New(labd.Config{QueueDepth: 1 << 16, CacheEntries: 1024})
			if err != nil {
				return "", nil, err
			}
			daemons[i] = srv
			handler = srv.Handler()
		} else {
			rt, err := fleet.New(fleet.Config{Self: self, Nodes: nodes})
			if err != nil {
				return "", nil, err
			}
			srv, err := labd.New(labd.Config{
				QueueDepth: 1 << 16, CacheEntries: 1024, NodeID: self, Peers: rt,
			})
			if err != nil {
				return "", nil, err
			}
			rt.SetLocal(srv)
			daemons[i] = srv
			handler = rt.Handler()
		}
		servers[i] = &http.Server{Handler: handler}
		go servers[i].Serve(listeners[i]) //nolint:errcheck
	}
	base := nodes["n0"]
	// Prime: submit each spec once so every step after the first request
	// per spec is a cache hit somewhere in the fleet.
	tgt, err := loadgen.NewHTTPTarget(base, jobSpecs(specs, specDur), nil)
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < specs; i++ {
		if err := tgt.Do(ctx, i); err != nil {
			return "", nil, fmt.Errorf("prime spec %d: %w", i, err)
		}
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, hs := range servers {
			_ = hs.Shutdown(ctx)
		}
		for _, d := range daemons {
			if d != nil {
				_ = d.Drain(ctx)
			}
		}
	}
	return base, shutdown, nil
}
