// Command gctop is a live terminal dashboard for a running gclabd
// daemon: it polls /metrics, /debug/slo and /debug/traces and redraws a
// fleet view — queue and worker occupancy over time, cache traffic, SLO
// burn rates with alert severity, the daemon's own Go GC vitals, and the
// slowest retained request traces.
//
//	gctop -addr http://localhost:8372
//	gctop -addr http://localhost:8372 -once   # one frame, no screen clear
//	gctop -addr http://localhost:8372 -fleet  # watch the whole fleet
//
// With -fleet, gctop polls the fleet rollup instead (/fleet/metrics,
// /fleet/slo, /fleet/traces, /fleet/nodes via any fleet node): the
// counters and histograms are exact cross-node aggregates, the slowest
// traces are the fleet-wide union labeled by node, and a membership
// panel shows each node's health and queue.
//
// gctop is read-only: it only issues GETs, so pointing it at a
// production daemon perturbs nothing but the /metrics scrape counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"jvmgc/internal/obs"
	"jvmgc/internal/textplot"
)

// sample is one poll of the daemon, flattened to what the view needs.
type sample struct {
	when time.Time
	ok   bool
	err  string

	queueDepth float64
	running    float64
	workers    float64
	submitted  float64
	hits       float64
	misses     float64
	cacheLen   float64
	uptime     float64

	goHeap, goGoal       float64
	goGC, goPauseP99     float64
	goroutines           float64
	tracesSeen, retained float64

	slo    obs.Status
	recent []obs.TraceSummary
	slow   []obs.TraceSummary
	nodes  []nodeRow
	epoch  uint64
}

// nodeRow is one fleet member in the -fleet membership panel. State and
// Incarnation come from gossip when live membership is on
// (alive/suspect/dead/left); a static fleet reports alive/down.
type nodeRow struct {
	ID          string `json:"id"`
	Alive       bool   `json:"alive"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
	Health      *struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Running    int    `json:"running"`
		Cache      struct {
			Entries    int   `json:"entries"`
			MemoryHits int64 `json:"memory_hits"`
			DiskHits   int64 `json:"disk_hits"`
			PeerHits   int64 `json:"peer_hits"`
		} `json:"cache"`
	} `json:"health"`
}

// poller fetches daemon state and keeps a bounded history for plots.
type poller struct {
	base    string
	fleet   bool
	client  *http.Client
	history []sample
	keep    int
}

func newPoller(base string, keep int, fleet bool) *poller {
	return &poller{
		base:   strings.TrimRight(base, "/"),
		fleet:  fleet,
		client: &http.Client{Timeout: 15 * time.Second},
		keep:   keep,
	}
}

func (p *poller) get(path string) ([]byte, error) {
	resp, err := p.client.Get(p.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return body, nil
}

// paths returns the poll endpoints for the current mode: a single
// daemon's debug surfaces, or the fleet rollup (same metric names, so
// everything downstream of the parse is mode-blind).
func (p *poller) paths() (metrics, slo, traces string) {
	if p.fleet {
		return "/fleet/metrics", "/fleet/slo", "/fleet/traces"
	}
	return "/metrics", "/debug/slo", "/debug/traces"
}

// poll reads the three debug surfaces into one sample. A daemon with
// tracing disabled (404 on /debug/slo) still yields a metrics-only view.
func (p *poller) poll(now time.Time) sample {
	metricsPath, sloPath, tracesPath := p.paths()
	s := sample{when: now}
	body, err := p.get(metricsPath)
	if err != nil {
		s.err = err.Error()
		p.push(s)
		return s
	}
	s.ok = true
	pts := obs.ParsePromText(string(body))
	read := func(name string) float64 {
		v, _ := obs.Metric(pts, name)
		return v
	}
	s.queueDepth = read("jvmgc_labd_queue_depth")
	s.running = read("jvmgc_labd_jobs_running")
	s.workers = read("jvmgc_labd_workers")
	s.submitted = read("jvmgc_labd_jobs_submitted_total")
	s.hits = read("jvmgc_labd_cache_hits_total")
	s.misses = read("jvmgc_labd_cache_misses_total")
	s.cacheLen = read("jvmgc_labd_cache_entries")
	s.uptime = read("jvmgc_labd_uptime_seconds")
	s.goHeap = read("jvmgc_labd_go_heap_objects_bytes")
	s.goGoal = read("jvmgc_labd_go_heap_goal_bytes")
	s.goGC = read("jvmgc_labd_go_gc_cycles")
	s.goPauseP99 = read("jvmgc_labd_go_gc_pause_p99_seconds")
	s.goroutines = read("jvmgc_labd_go_goroutines")
	s.tracesSeen = read("jvmgc_labd_traces_seen")
	s.retained = read("jvmgc_labd_traces_retained")

	if body, err := p.get(sloPath); err == nil {
		_ = json.Unmarshal(body, &s.slo)
	}
	if body, err := p.get(tracesPath); err == nil {
		var listing struct {
			Recent  []obs.TraceSummary `json:"recent"`
			Slowest []obs.TraceSummary `json:"slowest"`
		}
		if json.Unmarshal(body, &listing) == nil {
			s.recent = listing.Recent
			s.slow = listing.Slowest
		}
	}
	if p.fleet {
		if body, err := p.get("/fleet/nodes"); err == nil {
			var listing struct {
				Epoch uint64    `json:"epoch"`
				Nodes []nodeRow `json:"nodes"`
			}
			if json.Unmarshal(body, &listing) == nil {
				s.nodes = listing.Nodes
				s.epoch = listing.Epoch
			}
		}
	}
	p.push(s)
	return s
}

func (p *poller) push(s sample) {
	p.history = append(p.history, s)
	if len(p.history) > p.keep {
		p.history = p.history[len(p.history)-p.keep:]
	}
}

// render draws one full dashboard frame from the latest sample plus the
// poll history.
func (p *poller) render(s sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gctop — %s — %s\n", p.base, s.when.Format("15:04:05"))
	if !s.ok {
		fmt.Fprintf(&b, "\n  DAEMON UNREACHABLE: %s\n", s.err)
		return b.String()
	}

	lookups := s.hits + s.misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = s.hits / lookups
	}
	fmt.Fprintf(&b, "up %s   workers %.0f   queue %.0f   running %.0f\n",
		(time.Duration(s.uptime) * time.Second).String(), s.workers, s.queueDepth, s.running)
	fmt.Fprintf(&b, "jobs %.0f submitted   cache %.0f entries, %.0f%% hit rate   traces %.0f seen / %.0f retained\n",
		s.submitted, s.cacheLen, 100*hitRate, s.tracesSeen, s.retained)

	if len(s.nodes) > 0 {
		fmt.Fprintf(&b, "\nfleet nodes (epoch %d):\n", s.epoch)
		for _, n := range s.nodes {
			member := n.State
			if member == "" {
				member = "alive"
			}
			if n.Incarnation > 0 {
				member = fmt.Sprintf("%s@%d", member, n.Incarnation)
			}
			if n.Health == nil {
				fmt.Fprintf(&b, "  %-12s %-10s UNREACHABLE\n", n.ID, member)
				continue
			}
			h := n.Health
			fmt.Fprintf(&b, "  %-12s %-10s %-8s queue %3d  running %3d  cache %4d (mem %d / disk %d / peer %d hits)\n",
				n.ID, member, h.Status, h.QueueDepth, h.Running, h.Cache.Entries,
				h.Cache.MemoryHits, h.Cache.DiskHits, h.Cache.PeerHits)
		}
	}

	// SLO block: severity plus per-window burn multipliers.
	if s.slo.Severity != "" {
		fmt.Fprintf(&b, "\nSLO [%s]  %d requests, %d slow, %d failed (latency < %.3gs, target %.4g)\n",
			strings.ToUpper(s.slo.Severity), s.slo.Total, s.slo.Slow, s.slo.Errors,
			s.slo.LatencyThresholdSeconds, s.slo.LatencyTarget)
		for _, w := range s.slo.Windows {
			fmt.Fprintf(&b, "  window %-8s latency burn %6.2fx   error burn %6.2fx\n",
				w.Window, w.LatencyBurnRate, w.ErrorBurnRate)
		}
	}

	// The observer's own runtime, beside the simulated JVMs it measures.
	fmt.Fprintf(&b, "\nself: heap %s / goal %s   %.0f goroutines   %.0f GC cycles   pause p99 %.3gms\n",
		bytesHuman(s.goHeap), bytesHuman(s.goGoal), s.goroutines, s.goGC, s.goPauseP99*1e3)

	// Occupancy over the poll history.
	if len(p.history) >= 2 {
		t0 := p.history[0].when
		var xs, queue, running []float64
		for _, h := range p.history {
			if !h.ok {
				continue
			}
			xs = append(xs, h.when.Sub(t0).Seconds())
			queue = append(queue, h.queueDepth)
			running = append(running, h.running)
		}
		if len(xs) >= 2 {
			plot := textplot.Scatter{
				Title:  "occupancy",
				XLabel: "seconds",
				YLabel: "jobs",
				Width:  64, Height: 10,
			}
			b.WriteString("\n" + plot.Render([]textplot.Series{
				{Name: "queued", Glyph: 'q', X: xs, Y: queue},
				{Name: "running", Glyph: 'r', X: xs, Y: running},
			}))
		}
	}

	if len(s.slow) > 0 {
		b.WriteString("\nslowest traces:\n")
		for _, tr := range s.slow {
			b.WriteString(traceLine(tr))
		}
	}
	if len(s.recent) > 0 {
		n := len(s.recent)
		if n > 5 {
			n = 5
		}
		b.WriteString("\nrecent traces:\n")
		for _, tr := range s.recent[:n] {
			b.WriteString(traceLine(tr))
		}
	}
	return b.String()
}

// traceLine renders one trace summary row; fleet-merged rows carry the
// retaining node's label.
func traceLine(tr obs.TraceSummary) string {
	line := fmt.Sprintf("  %s  %8.1fms  %-5s  %3d spans  %s",
		tr.ID, tr.DurationSeconds*1e3, tr.Status, tr.Spans, tr.Name)
	if tr.Node != "" {
		line += "  @" + tr.Node
	}
	return line + "\n"
}

func bytesHuman(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.0fKiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8372", "gclabd base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll period")
		once     = flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
		history  = flag.Int("history", 120, "poll samples kept for the occupancy plot")
		fleetTop = flag.Bool("fleet", false, "watch the whole fleet via /fleet/* on any fleet node")
	)
	flag.Parse()

	p := newPoller(*addr, *history, *fleetTop)
	if *once {
		frame := p.render(p.poll(time.Now()))
		fmt.Print(frame)
		if !p.history[len(p.history)-1].ok {
			os.Exit(1)
		}
		return
	}

	for {
		s := p.poll(time.Now())
		// ANSI clear + home keeps the frame stable like top(1).
		fmt.Print("\x1b[2J\x1b[H" + p.render(s))
		time.Sleep(*interval)
	}
}
