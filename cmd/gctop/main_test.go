package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const cannedMetrics = `# HELP jvmgc_labd_queue_depth Jobs waiting for a worker.
jvmgc_labd_queue_depth 3
jvmgc_labd_jobs_running 2
jvmgc_labd_workers 4
jvmgc_labd_jobs_submitted_total 120
jvmgc_labd_cache_hits_total 80
jvmgc_labd_cache_misses_total 20
jvmgc_labd_cache_entries 20
jvmgc_labd_uptime_seconds 61
jvmgc_labd_go_heap_objects_bytes 5242880
jvmgc_labd_go_heap_goal_bytes 10485760
jvmgc_labd_go_gc_cycles 9
jvmgc_labd_go_gc_pause_p99_seconds 0.0021
jvmgc_labd_go_goroutines 14
jvmgc_labd_traces_seen 100
jvmgc_labd_traces_retained 32
`

const cannedSLO = `{
  "latency_threshold_seconds": 0.5, "latency_target": 0.99, "error_target": 0.999,
  "severity": "warn", "total": 100, "slow": 7, "errors": 1,
  "windows": [
    {"window": "5m0s", "latency_burn_rate": 7.0, "error_burn_rate": 10.0},
    {"window": "1h0m0s", "latency_burn_rate": 6.5, "error_burn_rate": 8.0}
  ]
}`

const cannedTraces = `{
  "seen": 100, "retained": 32,
  "recent": [
    {"id": "aaaabbbbccccddddaaaabbbbccccdddd", "name": "labd.request",
     "duration_seconds": 0.012, "status": "ok", "spans": 6}
  ],
  "slowest": [
    {"id": "ffffeeeeddddccccffffeeeeddddcccc", "name": "labd.request",
     "duration_seconds": 1.934, "status": "ok", "spans": 9, "slowest": true}
  ]
}`

func cannedDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(cannedMetrics))
	})
	mux.HandleFunc("GET /debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedSLO))
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedTraces))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRenderFrame: a full poll of a canned daemon produces a frame with
// every dashboard block — header, SLO burn rates, self-GC vitals, the
// occupancy plot (after two samples) and the trace tables.
func TestRenderFrame(t *testing.T) {
	ts := cannedDaemon(t)
	p := newPoller(ts.URL, 16, false)

	t0 := time.Unix(1700000000, 0)
	p.poll(t0)
	frame := p.render(p.poll(t0.Add(2 * time.Second)))

	for _, want := range []string{
		"up 1m1s", "workers 4", "queue 3", "running 2",
		"jobs 120 submitted", "80% hit rate", "100 seen / 32 retained",
		"SLO [WARN]", "100 requests, 7 slow, 1 failed",
		"window 5m0s", "7.00x", "window 1h0m0s",
		"self: heap 5.0MiB / goal 10.0MiB", "9 GC cycles", "pause p99 2.1ms",
		"occupancy", "q", "r", "seconds",
		"slowest traces:", "ffffeeeeddddccccffffeeeeddddcccc", "1934.0ms",
		"recent traces:", "aaaabbbbccccddddaaaabbbbccccdddd", "6 spans",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestRenderUnreachable: a dead daemon renders an error banner instead
// of a stale dashboard, and the sample is marked not-ok.
func TestRenderUnreachable(t *testing.T) {
	p := newPoller("http://127.0.0.1:1", 4, false)
	s := p.poll(time.Unix(1700000000, 0))
	if s.ok {
		t.Fatal("unreachable daemon sampled ok")
	}
	frame := p.render(s)
	if !strings.Contains(frame, "DAEMON UNREACHABLE") {
		t.Errorf("no unreachable banner:\n%s", frame)
	}
}

// TestHistoryBound: the poll ring never exceeds its keep bound.
func TestHistoryBound(t *testing.T) {
	ts := cannedDaemon(t)
	p := newPoller(ts.URL, 3, false)
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		p.poll(t0.Add(time.Duration(i) * time.Second))
	}
	if len(p.history) != 3 {
		t.Fatalf("history = %d samples, want 3", len(p.history))
	}
	if got := p.history[len(p.history)-1].when; got != t0.Add(9*time.Second) {
		t.Errorf("history tail = %v, want the newest sample", got)
	}
}

// TestMetricsOnlyDaemon: a daemon without tracing (404 on the debug
// endpoints) still renders the metrics header, with no SLO or trace
// blocks.
func TestMetricsOnlyDaemon(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedMetrics))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	p := newPoller(ts.URL, 4, false)
	frame := p.render(p.poll(time.Unix(1700000000, 0)))
	if !strings.Contains(frame, "workers 4") {
		t.Errorf("metrics header missing:\n%s", frame)
	}
	for _, absent := range []string{"SLO [", "slowest traces:"} {
		if strings.Contains(frame, absent) {
			t.Errorf("untraced daemon rendered %q:\n%s", absent, frame)
		}
	}
}
