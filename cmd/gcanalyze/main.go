// Command gcanalyze digests a GC log: pause statistics, a duration
// histogram, a pause timeline plot, and the cluster-impact analysis
// (which pauses would get a Cassandra node declared down).
//
// It reads logs in this laboratory's HotSpot-flavoured rendering — the
// output of `gcsim -v`, `jvmgc.SimulationResult.LogText`, or any file in
// the same format.
//
// Examples:
//
//	gcsim -collector CMS -heap 4g -alloc 800m -duration 5m -v | gcanalyze
//	gcanalyze -plot < run.gclog
//	gcanalyze -suspicion-timeout 8s server.gclog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jvmgc/internal/cassandra"
	"jvmgc/internal/gclog"
	"jvmgc/internal/simtime"
	"jvmgc/internal/textplot"
)

func main() {
	var (
		plot    = flag.Bool("plot", false, "render the pause timeline as an ASCII scatter")
		timeout = flag.Duration("suspicion-timeout", 8*time.Second,
			"gossip failure-detector timeout for the cluster-impact analysis (0 disables)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	log, err := gclog.Parse(in)
	if err != nil {
		fatal(err)
	}

	fmt.Print(gclog.Summarize(log).Render())
	fmt.Println()
	fmt.Println("pause duration histogram:")
	fmt.Print(gclog.Histogram(log))

	if *timeout > 0 {
		fd := cassandra.FailureDetector{
			HeartbeatInterval: simtime.Second,
			SuspicionTimeout:  simtime.FromStd(*timeout),
		}
		sus := fd.Analyze(log)
		fmt.Println()
		fmt.Println(cassandra.DescribeSuspicions("node", sus))
	}

	if *plot {
		var series textplot.Series
		series.Name = "pauses"
		series.Glyph = '*'
		for _, e := range log.Pauses() {
			series.X = append(series.X, e.Start.Seconds())
			series.Y = append(series.Y, e.Duration.Seconds())
		}
		sc := textplot.Scatter{
			Title: "pause timeline", Width: 78, Height: 16,
			XLabel: "time (s)", YLabel: "pause (s)",
		}
		fmt.Println()
		fmt.Println(sc.Render([]textplot.Series{series}))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcanalyze:", err)
	os.Exit(1)
}
