// Command gcanalyze digests a GC log: pause statistics, a duration
// histogram, a pause timeline plot, and the cluster-impact analysis
// (which pauses would get a Cassandra node declared down).
//
// It reads logs in this laboratory's HotSpot-flavoured rendering — the
// output of `gcsim -v`, `gctrace` (the unified-log export), or
// `jvmgc.SimulationResult.LogText` — from the file argument, or from
// stdin when no file is given. Parse errors abort with a non-zero exit
// rather than printing partial statistics.
//
// Examples:
//
//	gcsim -collector CMS -heap 4g -alloc 800m -duration 5m -v | gcanalyze
//	gcanalyze -plot < run.gclog
//	gcanalyze -suspicion-timeout 8s server.gclog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jvmgc/internal/cassandra"
	"jvmgc/internal/gclog"
	"jvmgc/internal/simtime"
	"jvmgc/internal/textplot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of the command: it parses args, reads the log
// from the named file (or stdin with no file argument), writes the
// analysis to out, and returns the process exit code.
func run(args []string, stdin io.Reader, out, errw io.Writer) int {
	fs := flag.NewFlagSet("gcanalyze", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		plot    = fs.Bool("plot", false, "render the pause timeline as an ASCII scatter")
		timeout = fs.Duration("suspicion-timeout", 8*time.Second,
			"gossip failure-detector timeout for the cluster-impact analysis (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(errw, "gcanalyze:", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	log, err := gclog.Parse(in)
	if err != nil {
		fmt.Fprintln(errw, "gcanalyze:", err)
		return 1
	}

	fmt.Fprint(out, gclog.Summarize(log).Render())
	fmt.Fprintln(out)
	fmt.Fprintln(out, "pause duration histogram:")
	fmt.Fprint(out, gclog.Histogram(log))

	if *timeout > 0 {
		fd := cassandra.FailureDetector{
			HeartbeatInterval: simtime.Second,
			SuspicionTimeout:  simtime.FromStd(*timeout),
		}
		sus := fd.Analyze(log)
		fmt.Fprintln(out)
		fmt.Fprintln(out, cassandra.DescribeSuspicions("node", sus))
	}

	if *plot {
		var series textplot.Series
		series.Name = "pauses"
		series.Glyph = '*'
		for _, e := range log.Pauses() {
			series.X = append(series.X, e.Start.Seconds())
			series.Y = append(series.Y, e.Duration.Seconds())
		}
		sc := textplot.Scatter{
			Title: "pause timeline", Width: 78, Height: 16,
			XLabel: "time (s)", YLabel: "pause (s)",
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, sc.Render([]textplot.Series{series}))
	}
	return 0
}
