package main

import (
	"strings"
	"testing"
)

const sampleLog = `# a comment line
0.500: [GC (young) (Allocation Failure) 4GB->1GB, 0.0500 secs]
2.000: [Full GC (Ergonomics) 10GB->3GB, 12.0000 secs]
`

func TestRunFromStdin(t *testing.T) {
	var out, errw strings.Builder
	code := run(nil, strings.NewReader(sampleLog), &out, &errw)
	if code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"pauses:", "1 full GCs", "pause duration histogram:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// The 12 s full pause trips the default 8 s failure-detector timeout.
	if !strings.Contains(got, "suspect") && !strings.Contains(got, "timeout") {
		t.Errorf("expected cluster-impact analysis in output:\n%s", got)
	}
}

func TestRunPlot(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-plot"}, strings.NewReader(sampleLog), &out, &errw); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "pause timeline") {
		t.Errorf("expected timeline plot in output:\n%s", out.String())
	}
}

func TestRunRejectsMalformedLog(t *testing.T) {
	var out, errw strings.Builder
	code := run(nil, strings.NewReader("not a gc log\n"), &out, &errw)
	if code == 0 {
		t.Fatal("run accepted a malformed log")
	}
	if out.Len() != 0 {
		t.Errorf("partial results printed despite parse error:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "gcanalyze:") {
		t.Errorf("expected error on stderr, got %q", errw.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"/nonexistent/path.gclog"}, strings.NewReader(""), &out, &errw); code == 0 {
		t.Fatal("run accepted a missing file")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, strings.NewReader(""), &out, &errw); code != 2 {
		t.Fatalf("run = %d, want 2 for bad flag", code)
	}
}
