// Command gclabd runs the GC laboratory as a service: an HTTP/JSON job
// daemon that schedules simulation jobs on a bounded worker pool and
// memoizes results in a content-addressed cache (every job is
// deterministic in its spec, so identical requests are answered with
// byte-identical cached results).
//
//	gclabd -addr :8372
//
// Submit jobs, read status and scrape metrics:
//
//	curl -s localhost:8372/v1/jobs -d '{"kind":"simulate","collector":"G1","duration_seconds":120,"seed":7}'
//	curl -s localhost:8372/v1/jobs -d '{"job":{"kind":"advise","heap_bytes":17179869184,"alloc_bytes_per_sec":6e8,"max_pause_ms":250},"async":true}'
//	curl -s localhost:8372/v1/jobs/j1
//	curl -s localhost:8372/metrics
//	curl -s localhost:8372/healthz
//
// Fleet mode shards the daemon across nodes (internal/fleet): every
// node runs the same command with the same -peers membership and its
// own -fleet identity, and any node accepts any job — placement is by
// consistent hash of the job's content address, the cache gains a peer
// tier, and /fleet/* serves the fleet-wide observability rollup:
//
//	gclabd -addr :8372 -fleet a -peers a=http://h1:8372,b=http://h2:8372,c=http://h3:8372
//
// -peers without -fleet runs a standalone router: no local daemon, jobs
// are only forwarded.
//
// Live membership (-gossip) runs a SWIM failure detector between the
// nodes: a node that stops answering probes is suspected, confirmed via
// indirect probes through peers, and eventually removed from placement —
// and rejoins automatically when it answers again. New nodes join a
// running fleet without membership restarts:
//
//	gclabd -addr :8375 -fleet d -advertise http://h4:8375 \
//	    -gossip -join http://h1:8372
//
// The joiner fetches the membership snapshot from a seed, warms its
// future cache arc from the current owners, and only then announces
// itself into placement. POST /v1/fleet/leave (or SIGTERM in gossip
// mode) departs gracefully: the leave is broadcast, the node's cached
// arc is handed to its successors, in-flight jobs drain, then the
// process exits — zero client-visible failures.
//
// SIGTERM/SIGINT drain gracefully: intake stops (healthz flips to
// draining), queued and running jobs finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"jvmgc/internal/faultinject"
	"jvmgc/internal/fleet"
	"jvmgc/internal/fleet/gossip"
	"jvmgc/internal/labd"
	"jvmgc/internal/obs"
)

// parsePeers parses "id=url,id=url" fleet membership.
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, ok := strings.Cut(entry, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("peer %q: want id=url", entry)
		}
		out[strings.TrimSpace(id)] = strings.TrimRight(strings.TrimSpace(url), "/")
	}
	if len(out) == 0 {
		return nil, errors.New("no peers in -peers")
	}
	return out, nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8372", "listen address")
		workers     = flag.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "FIFO backlog bound; beyond it submissions get HTTP 429")
		cacheSize   = flag.Int("cache-entries", 256, "result cache bound (LRU eviction)")
		cacheDir    = flag.String("cache-dir", "", "crash-safe on-disk result cache directory; entries are checksummed, written atomically, and survive restarts (empty = memory only)")
		timeout     = flag.Duration("timeout", 2*time.Minute, "default per-job queue+run timeout")
		parallelism = flag.Int("parallelism", 1, "per-job worker fan-out for sweep kinds (advise, ranking)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs on shutdown")
		chaosSeed   = flag.Uint64("chaos-seed", 0, "fault-injection seed; a fixed seed replays a chaos campaign")
		chaosSpec   = flag.String("chaos-spec", "", "fault-injection spec, e.g. 'labd/job.panic:p=0.01;labd/http.flaky:every=50' (empty disables injection)")

		fleetID  = flag.String("fleet", "", "this node's fleet identity; must name an entry in -peers (empty with -peers = standalone router)")
		peerSpec = flag.String("peers", "", "fleet membership as id=url,id=url,... (empty = standalone daemon, no fleet)")
		vnodes   = flag.Int("fleet-vnodes", 0, "virtual nodes per fleet member on the placement ring (0 = default 128)")
		loadFac  = flag.Float64("fleet-load-factor", 1.25, "bounded-load multiplier; a node holds at most ceil(factor x mean pending) routed jobs (<=1 disables the bound)")

		gossipOn   = flag.Bool("gossip", false, "live fleet membership: SWIM gossip failure detection, join/leave, automatic ring reconfiguration")
		joinSeeds  = flag.String("join", "", "comma-separated seed URLs of a running fleet to join (implies -gossip; requires -fleet and -advertise)")
		advertise  = flag.String("advertise", "", "base URL peers use to reach this node (default: this node's -peers entry)")
		gossipTick = flag.Duration("gossip-interval", time.Second, "gossip protocol period")
		suspectTO  = flag.Duration("suspect-timeout", 0, "how long a suspicion lives before a death declaration (0 = 8x gossip interval; always raised to 32x the runtime's worst GC pause)")

		trace      = flag.Bool("trace", true, "request tracing: per-request spans at /debug/traces, exemplars on /metrics")
		traceCap   = flag.Int("trace-capacity", 256, "completed traces retained in the ring (slowest are kept longer)")
		traceSlow  = flag.Int("trace-slowest", 16, "slowest traces pinned beyond ring eviction")
		traceSeed  = flag.Uint64("trace-seed", 0, "trace/span ID seed; fixed seed reproduces the ID stream (0 = from clock)")
		sloLatency = flag.Duration("slo-latency", 500*time.Millisecond, "SLO latency threshold; slower requests burn the latency budget")
		sloTarget  = flag.Float64("slo-target", 0.99, "SLO latency objective: fraction of requests under the threshold")
		sloErrTgt  = flag.Float64("slo-error-target", 0.999, "SLO availability objective: fraction of requests that succeed")
	)
	flag.Parse()

	chaos, err := faultinject.Parse(*chaosSeed, *chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclabd:", err)
		os.Exit(2)
	}
	if chaos.Enabled() {
		fmt.Fprintf(os.Stderr, "gclabd: CHAOS ENABLED: seed=%d spec=%q\n", *chaosSeed, *chaosSpec)
	}

	cfg := labd.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheSize,
		CacheDir:       *cacheDir,
		DefaultTimeout: *timeout,
		Parallelism:    *parallelism,
		Chaos:          chaos,
	}
	if *trace {
		cfg.Tracer = obs.NewTracer(obs.Config{
			Capacity: *traceCap,
			SlowestK: *traceSlow,
			Seed:     *traceSeed,
		})
		cfg.SLO = obs.NewSLO(obs.SLOConfig{
			LatencyThreshold: *sloLatency,
			LatencyTarget:    *sloTarget,
			ErrorTarget:      *sloErrTgt,
		})
	}
	useGossip := *gossipOn || *joinSeeds != ""
	if useGossip && *fleetID == "" {
		fmt.Fprintln(os.Stderr, "gclabd: -gossip/-join require -fleet")
		os.Exit(2)
	}

	// Fleet wiring order matters: the router must exist before the
	// daemon (it is the daemon's peer cache tier), and the daemon must
	// attach back to the router (it serves the router's local shard).
	var router *fleet.Router
	var peers map[string]string
	// leaveCh fires when a graceful leave has fully drained; the main
	// loop then shuts the HTTP server down and exits.
	leaveCh := make(chan struct{}, 1)
	if *peerSpec != "" || *joinSeeds != "" {
		if *peerSpec != "" {
			var err error
			if peers, err = parsePeers(*peerSpec); err != nil {
				fmt.Fprintln(os.Stderr, "gclabd:", err)
				os.Exit(2)
			}
		} else {
			// A pure joiner boots alone: the join snapshot brings the
			// membership, gossip brings the ring.
			if *advertise == "" {
				fmt.Fprintln(os.Stderr, "gclabd: -join without -peers requires -advertise")
				os.Exit(2)
			}
			peers = map[string]string{*fleetID: strings.TrimRight(*advertise, "/")}
		}
		router, err = fleet.New(fleet.Config{
			Self:       *fleetID,
			Nodes:      peers,
			Vnodes:     *vnodes,
			LoadFactor: *loadFac,
			Chaos:      chaos,
			AfterLeave: func() {
				select {
				case leaveCh <- struct{}{}:
				default:
				}
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gclabd:", err)
			os.Exit(2)
		}
		cfg.NodeID = *fleetID
		if *fleetID != "" {
			cfg.Peers = router
		}
	} else if *fleetID != "" {
		fmt.Fprintln(os.Stderr, "gclabd: -fleet requires -peers")
		os.Exit(2)
	}

	var srv *labd.Server
	if *peerSpec == "" || *fleetID != "" {
		var err error
		srv, err = labd.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gclabd:", err)
			os.Exit(1)
		}
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "gclabd: disk cache at %s (%d entries warm)\n",
				*cacheDir, srv.DiskCacheEntries())
		}
	}

	if router != nil && srv != nil {
		router.SetLocal(srv)
	}

	// Live membership: the gossiper owns the fleet view and pushes every
	// placement change into the router's ring via SetMembership.
	var gsp *gossip.Gossiper
	if useGossip && router != nil {
		adv := strings.TrimRight(*advertise, "/")
		if adv == "" {
			adv = peers[*fleetID]
		}
		if adv == "" {
			fmt.Fprintln(os.Stderr, "gclabd: -gossip requires -advertise or a -peers entry for this node")
			os.Exit(2)
		}
		gcfg := gossip.Config{
			Self:           *fleetID,
			URL:            adv,
			Peers:          peers,
			Joining:        *joinSeeds != "",
			Interval:       *gossipTick,
			SuspectTimeout: *suspectTO,
			Chaos:          chaos,
			OnUpdate:       router.SetMembership,
		}
		if srv != nil {
			gcfg.Rec = srv.Recorder()
		}
		gsp, err = gossip.New(gcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gclabd:", err)
			os.Exit(2)
		}
		router.AttachGossip(gsp)
	}

	var handler http.Handler
	switch {
	case router != nil && srv != nil:
		handler = router.Handler()
		fmt.Fprintf(os.Stderr, "gclabd: fleet node %q over %d peers\n",
			*fleetID, router.Ring().Len())
	case router != nil:
		handler = router.Handler()
		fmt.Fprintf(os.Stderr, "gclabd: standalone fleet router over %d nodes\n",
			router.Ring().Len())
	default:
		handler = srv.Handler()
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gclabd: listening on %s\n", *addr)

	if gsp != nil {
		gsp.Start()
		if *joinSeeds != "" {
			// Join in the background — the listener is already up to
			// answer gossip, and traffic routes here only after the
			// warm-up completes and the node announces itself.
			seeds := strings.Split(*joinSeeds, ",")
			for i := range seeds {
				seeds[i] = strings.TrimRight(strings.TrimSpace(seeds[i]), "/")
			}
			go func() {
				jctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
				defer cancel()
				if err := router.JoinAndWarm(jctx, seeds); err != nil {
					fmt.Fprintln(os.Stderr, "gclabd:", err)
					return
				}
				fmt.Fprintf(os.Stderr, "gclabd: joined fleet (epoch %d, %d nodes)\n",
					router.Epoch(), router.Ring().Len())
			}()
		}
	}

	left := false
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "gclabd:", err)
		os.Exit(1)
	case <-leaveCh:
		// POST /v1/fleet/leave already broadcast the departure, handed
		// the cache arc off and drained the daemon; only the HTTP server
		// remains.
		left = true
		fmt.Fprintln(os.Stderr, "gclabd: left fleet, shutting down")
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "gclabd: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if gsp != nil && router != nil && !left {
		// Gossip mode turns a SIGTERM into a graceful leave: broadcast,
		// hand the cache arc to successors, drain — peers re-ring around
		// this node instead of having to detect its death.
		if err := router.Leave(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "gclabd: leave:", err)
		} else {
			left = true // Leave already drained the daemon
		}
	}
	// Stop intake first (connections finish their in-flight responses),
	// then wait for the scheduler to empty.
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gclabd: http shutdown:", err)
	}
	if gsp != nil {
		gsp.Close()
	}
	if router != nil {
		router.Close()
	}
	if srv != nil && !left {
		if err := srv.Drain(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "gclabd: drain:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "gclabd: drained cleanly")
}
