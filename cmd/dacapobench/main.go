// Command dacapobench runs DaCapo-style benchmark experiments: a single
// benchmark under one collector, or the paper's sweeps.
//
// Examples:
//
//	dacapobench -bench xalan -collector G1
//	dacapobench -bench xalan -all-collectors -no-system-gc
//	dacapobench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"jvmgc"
)

func main() {
	var (
		bench      = flag.String("bench", "xalan", "benchmark name")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		col        = flag.String("collector", "ParallelOld", "collector name")
		all        = flag.Bool("all-collectors", false, "run all six collectors")
		heap       = flag.Int64("heap", 0, "heap bytes (0 = paper baseline 16 GiB)")
		young      = flag.Int64("young", 0, "young bytes (0 = baseline ~5.6 GiB)")
		iters      = flag.Int("iterations", 10, "benchmark iterations")
		noSystemGC = flag.Bool("no-system-gc", false, "disable the forced full GC between iterations")
		noTLAB     = flag.Bool("no-tlab", false, "disable TLABs")
		seed       = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if *list {
		for _, n := range jvmgc.Benchmarks() {
			fmt.Println(n)
		}
		return
	}

	collectors := []string{*col}
	if *all {
		collectors = jvmgc.Collectors()
	}
	for _, c := range collectors {
		res, err := jvmgc.RunBenchmark(jvmgc.BenchmarkOptions{
			Benchmark:   *bench,
			Collector:   c,
			HeapBytes:   *heap,
			YoungBytes:  *young,
			Iterations:  *iters,
			NoSystemGC:  *noSystemGC,
			DisableTLAB: *noTLAB,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dacapobench: %s/%s: %v\n", *bench, c, err)
			continue
		}
		fmt.Printf("%-12s total=%.3fs final=%.3fs pauses=%d full=%d maxPause=%v totalPause=%v\n",
			c, res.TotalSeconds,
			res.IterationSeconds[len(res.IterationSeconds)-1],
			len(res.Pauses), res.FullGCs, res.MaxPause, res.TotalPause)
		for i, d := range res.IterationSeconds {
			fmt.Printf("  iteration %2d: %.3fs\n", i+1, d)
		}
	}
}
