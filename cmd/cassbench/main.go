// Command cassbench runs the client-server experiment: a Cassandra-style
// node under one collector, with a YCSB-style client measuring
// per-operation latency (the paper's §4).
//
// Examples:
//
//	cassbench -collector ParallelOld -stress
//	cassbench -collector CMS -duration 1h -points
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"jvmgc"
)

func main() {
	var (
		col      = flag.String("collector", "ParallelOld", "collector (ParallelOld, CMS, G1)")
		stress   = flag.Bool("stress", false, "use the paper's stress configuration (no flushes, preloaded commitlog)")
		duration = flag.Duration("duration", 2*time.Hour, "client-driven run length (simulated)")
		ops      = flag.Float64("ops", 150, "client arrival rate (ops/second)")
		points   = flag.Bool("points", false, "dump the latency points and GC series (Figure 5 data)")
		asJSON   = flag.Bool("json", false, "emit the full result as JSON (bands, pauses and points)")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
		Collector:       *col,
		Stress:          *stress,
		Duration:        *duration,
		ClientOpsPerSec: *ops,
		Seed:            *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cassbench:", err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "cassbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("server: %s, %.0fs total (%.0fs replay), %d pauses (%d full), max pause %v\n",
		*col, res.TotalSeconds, res.ReplaySeconds, len(res.ServerPauses), res.FullGCs, res.MaxPause)
	printBands := func(name string, b jvmgc.LatencyBands) {
		fmt.Printf("%s: n=%d avg=%.3fms min=%.3fms max=%.3fms normal-band=%.2f%%reqs/%.2f%%GCs\n",
			name, b.N, b.AvgMS, b.MinMS, b.MaxMS, b.NormalReqsPct, b.NormalGCsPct)
		for _, line := range b.Exceedance {
			fmt.Printf("  %-11s %.3f%%reqs  %.1f%%GCs\n", line.Label, line.ReqsPct, line.GCsPct)
		}
	}
	printBands("READ", res.Read)
	printBands("UPDATE", res.Update)

	if *points {
		for _, op := range res.Ops {
			typ := "UPDATE"
			if op.Read {
				typ = "READ"
			}
			fmt.Printf("%s %.1f %.3f\n", typ, op.AtSeconds, op.LatencyMS)
		}
		for _, p := range res.ServerPauses {
			fmt.Printf("GC %.1f %.3f\n", p.At.Seconds(), p.Duration.Seconds()*1e3)
		}
	}
}
