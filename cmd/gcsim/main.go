// Command gcsim runs one simulated JVM under a chosen collector and
// workload, and prints the resulting GC log and pause summary.
//
// Example:
//
//	gcsim -collector CMS -heap 4g -young 1g -alloc 800m -duration 60s -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"jvmgc"
	"jvmgc/internal/profiling"
)

func main() {
	var (
		collectorName = flag.String("collector", "ParallelOld", "collector name (Serial, ParNew, Parallel, ParallelOld, CMS, G1)")
		heap          = flag.String("heap", "16g", "heap size (-Xms=-Xmx), e.g. 512m, 16g")
		young         = flag.String("young", "", "young generation size (-Xmn); empty selects ergonomics")
		alloc         = flag.String("alloc", "200m", "allocation rate in bytes/second, e.g. 800m")
		threads       = flag.Int("threads", 48, "mutator threads")
		duration      = flag.Duration("duration", time.Minute, "simulated run duration")
		noTLAB        = flag.Bool("no-tlab", false, "disable TLABs (-XX:-UseTLAB)")
		seed          = flag.Uint64("seed", 1, "random seed")
		verbose       = flag.Bool("v", false, "print the full GC log")
		asJSON        = flag.Bool("json", false, "emit the result as JSON")
		streaming     = flag.Bool("streaming-stats", false, "bounded-memory safepoint statistics (histogram percentiles within 1%); default retains every sample")
		trace         = flag.String("trace", "", "CSV allocation trace to replay (seconds,alloc_bytes_per_sec); overrides -alloc and -duration")
		traceOut      = flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the run to this file")
		metricsOut    = flag.String("metrics-out", "", "write a Prometheus text-format metrics snapshot of the run to this file")
		sample        = flag.Duration("sample-interval", 100*time.Millisecond, "flight-recorder time-series sample interval (simulated time)")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile    = flag.String("memprofile", "", "write an allocation profile of the run to this file (go tool pprof)")
	)
	flag.Parse()

	stopCPU, perr := profiling.Start(*cpuprofile)
	if perr != nil {
		fatal(perr)
	}

	heapBytes, err := parseSize(*heap)
	if err != nil {
		fatal(err)
	}
	var youngBytes int64
	if *young != "" {
		if youngBytes, err = parseSize(*young); err != nil {
			fatal(err)
		}
	}
	allocBytes, err := parseSize(*alloc)
	if err != nil {
		fatal(err)
	}

	cfg := jvmgc.SimulationConfig{
		Collector:        *collectorName,
		HeapBytes:        heapBytes,
		YoungBytes:       youngBytes,
		DisableTLAB:      *noTLAB,
		Threads:          *threads,
		AllocBytesPerSec: float64(allocBytes),
		StreamingStats:   *streaming,
		Seed:             *seed,
	}
	if *traceOut != "" || *metricsOut != "" {
		cfg.Recorder = jvmgc.NewRecorder(*sample)
	}
	var res *jvmgc.SimulationResult
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		res, err = jvmgc.SimulateTrace(cfg, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = jvmgc.Simulate(cfg, *duration)
		if err != nil {
			fatal(err)
		}
	}

	if cfg.Recorder != nil {
		if *traceOut != "" {
			if err := writeExport(*traceOut, cfg.Recorder.WriteChromeTrace); err != nil {
				fatal(err)
			}
		}
		if *metricsOut != "" {
			if err := writeExport(*metricsOut, cfg.Recorder.WritePrometheus); err != nil {
				fatal(err)
			}
		}
	}

	stopCPU()
	if err := profiling.WriteHeap(*memprofile); err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	// With -v the summary trails the log on stdout; render it as gclog
	// comment lines so the output stays parseable (`gcsim -v | gcanalyze`).
	prefix := ""
	if *verbose {
		fmt.Print(res.LogText)
		prefix = "# "
	}
	fmt.Printf("%scollector=%s duration=%v pauses=%d full=%d totalPause=%v maxPause=%v heapUsed=%s oldLive=%s\n",
		prefix, *collectorName, *duration, len(res.Pauses), res.FullGCs,
		res.TotalPause.Round(time.Microsecond), res.MaxPause.Round(time.Microsecond),
		size(res.HeapUsed), size(res.OldLiveBytes))
	sp := res.Safepoints
	fmt.Printf("%ssafepoints=%d ttspTotal=%v ttspMean=%v p50=%v p95=%v p99=%v max=%v\n",
		prefix, sp.Count, sp.Total.Round(time.Microsecond), sp.Mean.Round(time.Microsecond),
		sp.P50.Round(time.Microsecond), sp.P95.Round(time.Microsecond),
		sp.P99.Round(time.Microsecond), sp.Max.Round(time.Microsecond))
}

// writeExport writes one recorder export to path.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcsim:", err)
	os.Exit(1)
}

// parseSize parses "512m", "16g", "100k" or a plain byte count.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}

func size(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
