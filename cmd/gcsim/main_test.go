package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"512", 512},
		{"2k", 2048},
		{"3m", 3 << 20},
		{"16g", 16 << 30},
		{"1.5g", 3 << 29},
		{"  8M ", 8 << 20},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "12q3g"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestSizeFormat(t *testing.T) {
	cases := map[int64]string{
		512:      "512B",
		3 << 20:  "3.00MB",
		16 << 30: "16.00GB",
		5 << 29:  "2.50GB",
	}
	for in, want := range cases {
		if got := size(in); got != want {
			t.Errorf("size(%d) = %q, want %q", in, got, want)
		}
	}
}
