// Command advisor recommends a collector and young-generation size for a
// workload under a pause SLO, by sweeping the candidates in simulation.
//
// Example:
//
//	advisor -heap 16g -alloc 600m -threads 32 -max-pause 250ms -max-paused-pct 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"jvmgc"
)

func main() {
	var (
		heap      = flag.String("heap", "16g", "fixed heap size to tune within")
		alloc     = flag.String("alloc", "400m", "allocation rate in bytes/second")
		threads   = flag.Int("threads", 48, "mutator threads")
		maxPause  = flag.Duration("max-pause", 500*time.Millisecond, "SLO: worst tolerable stop-the-world pause (0 = unbounded)")
		maxPaused = flag.Float64("max-paused-pct", 5, "SLO: max percent of time paused (0 = unbounded)")
		window    = flag.Duration("window", 5*time.Minute, "simulated evaluation window per candidate")
		seed      = flag.Uint64("seed", 1, "random seed")
		par       = flag.Int("parallelism", 0, "worker count for the deterministic work-stealing candidate sweep (0 = all cores); the ranking is byte-identical at any setting")
	)
	flag.Parse()

	heapBytes, err := parseSize(*heap)
	if err != nil {
		fatal(err)
	}
	allocBytes, err := parseSize(*alloc)
	if err != nil {
		fatal(err)
	}

	advice, err := jvmgc.Advise(jvmgc.AdviseOptions{
		HeapBytes:        heapBytes,
		Threads:          *threads,
		AllocBytesPerSec: float64(allocBytes),
		MaxPause:         *maxPause,
		MaxPauseFraction: *maxPaused / 100,
		EvaluationWindow: *window,
		Seed:             *seed,
		Parallelism:      *par,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%-12s %-8s %-12s %-9s %-8s %s\n",
		"collector", "young", "worstPause", "paused%", "fullGCs", "verdict")
	for _, a := range advice {
		verdict := "violates SLO"
		switch {
		case a.OutOfMemory:
			verdict = "OUT OF MEMORY"
		case a.MeetsSLO:
			verdict = "meets SLO"
		}
		fmt.Printf("%-12s %-8s %-12v %-9.2f %-8d %s\n",
			a.Collector, size(a.YoungBytes),
			a.WorstPause.Round(time.Millisecond),
			100*a.PauseFraction, a.FullGCs, verdict)
	}
	if len(advice) > 0 && advice[0].MeetsSLO {
		best := advice[0]
		fmt.Printf("\nrecommendation: %s with -Xmn%s (worst pause %v, %.2f%% paused)\n",
			best.Collector, size(best.YoungBytes),
			best.WorstPause.Round(time.Millisecond), 100*best.PauseFraction)
	} else {
		fmt.Println("\nno configuration meets the SLO on this heap; consider a larger heap or a looser objective")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "advisor:", err)
	os.Exit(1)
}

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}

func size(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2gg", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%dm", b>>20)
	default:
		return fmt.Sprintf("%d", b)
	}
}
