// Command gctrace runs one DaCapo-style benchmark under a chosen
// collector with the flight recorder attached and writes all three
// exports: a Chrome trace-event JSON (load it in Perfetto or
// chrome://tracing), a Prometheus text-format metrics snapshot, and a
// HotSpot-flavoured unified GC log that gcanalyze accepts.
//
// Attaching the recorder never changes simulation results — the run is
// byte-identical to the same configuration without tracing.
//
// Example:
//
//	gctrace -bench xalan -gc g1
//	gctrace -bench h2 -gc CMS -heap 8g -young 2g -o /tmp/h2cms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"jvmgc/internal/collector"
	"jvmgc/internal/dacapo"
	"jvmgc/internal/machine"
	"jvmgc/internal/simtime"
	"jvmgc/internal/telemetry"
)

func main() {
	var (
		bench      = flag.String("bench", "xalan", "DaCapo benchmark name")
		gc         = flag.String("gc", "ParallelOld", "collector name (case-insensitive; g1, cms, parallelold, ...)")
		heap       = flag.String("heap", "", "heap size (-Xms=-Xmx), e.g. 512m, 16g; empty selects the paper baseline")
		young      = flag.String("young", "", "young generation size (-Xmn); empty selects ergonomics")
		iterations = flag.Int("iterations", 10, "benchmark iterations")
		seed       = flag.Uint64("seed", 1, "random seed")
		sample     = flag.Duration("sample-interval", 100*time.Millisecond, "time-series sample interval (simulated time)")
		out        = flag.String("o", "", "output file prefix (default <bench>-<gc>)")
	)
	flag.Parse()

	b, err := dacapo.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	gcName := collector.Normalize(*gc)

	cfg := dacapo.BaselineConfig(b)
	cfg.CollectorName = gcName
	if *heap != "" {
		h, err := parseSize(*heap)
		if err != nil {
			fatal(err)
		}
		cfg.Heap = machine.Bytes(h)
	}
	if *young != "" {
		y, err := parseSize(*young)
		if err != nil {
			fatal(err)
		}
		cfg.Young = machine.Bytes(y)
		cfg.YoungExplicit = true
	}
	if *iterations > 0 {
		cfg.Iterations = *iterations
	}
	cfg.Seed = *seed
	rec := telemetry.New(telemetry.Config{SampleInterval: simtime.FromStd(*sample)})
	cfg.Recorder = rec

	res, err := dacapo.Run(cfg)
	if err != nil {
		fatal(err)
	}

	prefix := *out
	if prefix == "" {
		prefix = fmt.Sprintf("%s-%s", b.Name, strings.ToLower(gcName))
	}
	exports := []struct {
		path  string
		write func(io.Writer) error
	}{
		{prefix + ".trace.json", rec.WriteChromeTrace},
		{prefix + ".prom", rec.WritePrometheus},
		{prefix + ".gclog", rec.WriteUnifiedLog},
	}
	for _, e := range exports {
		if err := writeExport(e.path, e.write); err != nil {
			fatal(err)
		}
	}

	p, full := res.Log.CountPauses()
	fmt.Printf("benchmark=%s collector=%s iterations=%d total=%v pauses=%d full=%d totalPause=%v maxPause=%v\n",
		b.Name, gcName, len(res.Iterations), res.Total,
		p, full, res.Log.TotalPause(), res.Log.MaxPause())
	fmt.Printf("recorded %d spans, %d samples, %d counters\n",
		len(rec.Spans()), len(rec.Samples()), len(rec.Counters()))
	for _, e := range exports {
		fmt.Printf("wrote %s\n", e.path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gctrace:", err)
	os.Exit(1)
}

// writeExport writes one recorder export to path.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSize parses "512m", "16g", "100k" or a plain byte count.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("empty size")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}
