// Command benchdiff converts `go test -bench` output into a
// machine-readable JSON report and gates it against a committed baseline.
//
// Typical CI usage (see ci.sh's bench-gate step):
//
//	go test -run=NONE -bench '...' -benchmem ./... | \
//	    benchdiff -out BENCH_current.json -baseline BENCH_baseline.json
//
// Exit status: 0 when no gated benchmark regressed (or no baseline was
// given), 1 on regression, 2 on usage or parse errors. A benchmark in the
// baseline regresses when its ns/op exceeds the baseline by more than
// -max-ns-ratio allows, when its allocs/op increases at all (allocation
// counts are deterministic; see -alloc-slack), or when it disappears from
// the current run. Benchmarks absent from the baseline are recorded in
// the output report but not gated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jvmgc/internal/benchreg"
)

func main() {
	var (
		in         = flag.String("in", "", "benchmark text to parse (default stdin)")
		out        = flag.String("out", "", "write the parsed report as JSON to this file")
		baseline   = flag.String("baseline", "", "baseline JSON report to gate against")
		maxNsRatio = flag.Float64("max-ns-ratio", benchreg.DefaultMaxNsRatio, "highest tolerated current/baseline ns/op ratio")
		allocSlack = flag.Float64("alloc-slack", 0, "tolerated fractional allocs/op increase (0 = any increase fails)")
		quiet      = flag.Bool("q", false, "print only regressions, not the full comparison table")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	cur, err := benchreg.Parse(src)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results in input"))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := cur.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *baseline == "" {
		fmt.Printf("benchdiff: parsed %d benchmarks (no baseline, nothing gated)\n", len(cur.Benchmarks))
		return
	}
	bf, err := os.Open(*baseline)
	if err != nil {
		fatal(err)
	}
	base, err := benchreg.ReadJSON(bf)
	bf.Close()
	if err != nil {
		fatal(err)
	}

	deltas := benchreg.Compare(base, cur, benchreg.Thresholds{
		MaxNsRatio: *maxNsRatio,
		AllocSlack: *allocSlack,
	})
	regs := benchreg.Regressions(deltas)
	for _, d := range deltas {
		if *quiet && !d.Regressed {
			continue
		}
		fmt.Println(d)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", len(regs), *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d gated benchmarks within thresholds\n", len(base.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
