// latencysla: the paper's §4 client-server study as an SLA question —
// "which collector keeps my database's client latency tail inside the
// budget?"
//
// Runs the Cassandra-style node under the three main collectors with a
// YCSB-style 50/50 workload, and checks the read-latency tail against an
// SLA, attributing violations to GC pause shadows.
//
// Run with:
//
//	go run ./examples/latencysla
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"jvmgc"
)

func main() {
	const (
		slaMS    = 50.0 // 50 ms read SLA
		slaQuant = 0.999
	)

	fmt.Printf("SLA: p%.1f read latency <= %.0fms over a simulated 2h run\n\n", 100*slaQuant, slaMS)
	for _, collector := range []string{"ParallelOld", "CMS", "G1"} {
		res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
			Collector: collector,
			Duration:  2 * time.Hour,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}

		var reads []float64
		violations, shadowedViolations := 0, 0
		for _, op := range res.Ops {
			if !op.Read {
				continue
			}
			reads = append(reads, op.LatencyMS)
			if op.LatencyMS > slaMS {
				violations++
				if op.ShadowedByGC {
					shadowedViolations++
				}
			}
		}
		sort.Float64s(reads)
		p := reads[int(float64(len(reads))*slaQuant)]

		status := "PASS"
		if p > slaMS {
			status = "FAIL"
		}
		gcShare := 0.0
		if violations > 0 {
			gcShare = 100 * float64(shadowedViolations) / float64(violations)
		}
		fmt.Printf("%-12s %s  p99.9=%.1fms  avg=%.2fms  max=%.0fms  violations=%d (%.0f%% during GC pauses)\n",
			collector, status, p, res.Read.AvgMS, res.Read.MaxMS, violations, gcShare)
	}
	fmt.Println("\nThe paper's conclusion in one run: almost every latency peak is a GC pause shadow.")
}
