// gctuning: use the laboratory the way a performance engineer would —
// sweep collectors and young-generation sizes for a fixed service
// workload and pick the configuration with the best worst-case pause
// under a throughput floor.
//
// This is the paper's §3 methodology turned into a tuning tool: instead
// of reading GC logs off a production box for every candidate flag
// combination, sweep them in simulation first.
//
// Run with:
//
//	go run ./examples/gctuning
package main

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

func main() {
	const (
		heap     = int64(16) << 30
		duration = 5 * time.Minute
		// The service cannot tolerate losing more than 2% of its time to
		// pauses, and wants the smallest worst-case pause within that.
		maxPauseBudget = 0.02
	)
	youngSizes := []int64{1 << 30, 2 << 30, 4 << 30, 8 << 30}

	type candidate struct {
		collector string
		young     int64
		worst     time.Duration
		pauseFrac float64
	}
	var best *candidate

	fmt.Printf("%-12s %-8s %-12s %-10s %s\n", "collector", "young", "worstPause", "pause%", "verdict")
	for _, collector := range jvmgc.Collectors() {
		for _, young := range youngSizes {
			res, err := jvmgc.Simulate(jvmgc.SimulationConfig{
				Collector:        collector,
				HeapBytes:        heap,
				YoungBytes:       young,
				AllocBytesPerSec: 500e6,
				Threads:          48,
				// A service with a 1 GiB working set of medium-lived
				// request state.
				ShortLivedFraction:  0.88,
				ShortLifetime:       150 * time.Millisecond,
				MediumLivedFraction: 0.12,
				MediumLifetime:      8 * time.Second,
				Seed:                11,
			}, duration)
			if err != nil {
				log.Fatal(err)
			}
			frac := res.TotalPause.Seconds() / duration.Seconds()
			verdict := ""
			if frac <= maxPauseBudget {
				if best == nil || res.MaxPause < best.worst {
					best = &candidate{collector, young, res.MaxPause, frac}
					verdict = "<- best so far"
				}
			} else {
				verdict = "over pause budget"
			}
			fmt.Printf("%-12s %-8s %-12v %-10.2f %s\n",
				collector, gb(young), res.MaxPause.Round(time.Millisecond), 100*frac, verdict)
		}
	}
	if best == nil {
		fmt.Println("no configuration met the pause budget")
		return
	}
	fmt.Printf("\nrecommendation: %s with a %s young generation (worst pause %v, %.2f%% paused)\n",
		best.collector, gb(best.young), best.worst.Round(time.Millisecond), 100*best.pauseFrac)
}

func gb(b int64) string { return fmt.Sprintf("%dg", b>>30) }
