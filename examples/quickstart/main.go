// Quickstart: simulate one JVM running a typical server workload under
// two collectors and compare their pause behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

func main() {
	workload := jvmgc.SimulationConfig{
		HeapBytes:        8 << 30, // 8 GiB
		AllocBytesPerSec: 600e6,   // 600 MB/s of allocation
		Threads:          32,
		Seed:             7,
	}

	for _, collector := range []string{"ParallelOld", "CMS"} {
		cfg := workload
		cfg.Collector = collector
		res, err := jvmgc.Simulate(cfg, 2*time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d pauses (%d full), total %v, worst %v\n",
			collector, len(res.Pauses), res.FullGCs,
			res.TotalPause.Round(time.Millisecond),
			res.MaxPause.Round(time.Millisecond))
		// Print the first few pauses of the log.
		for i, p := range res.Pauses {
			if i == 5 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %8.3fs  %-18s %-22s %v\n",
				p.At.Seconds(), p.Kind, "("+p.Cause+")", p.Duration.Round(time.Microsecond))
		}
	}
}
