// labservice: the GC laboratory as a service — start the labd job
// daemon in-process, submit experiments over its HTTP/JSON API with the
// Go client, and watch the content-addressed cache at work: the first
// submission runs a simulation, every identical one after it is answered
// from the cache with the exact same bytes.
//
// The same daemon runs standalone as cmd/gclabd; this example wires it
// to an ephemeral port so it is runnable anywhere.
//
// Run with:
//
//	go run ./examples/labservice
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"jvmgc/internal/labd"
	"jvmgc/internal/labd/client"
)

func main() {
	ctx := context.Background()

	// Start the daemon: 2 workers, a short backlog, LRU-bounded cache.
	srv, err := labd.New(labd.Config{Workers: 2, QueueDepth: 16, CacheEntries: 64})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("labd listening on %s\n\n", ts.URL)

	c := client.New(ts.URL)
	if err := c.Healthz(ctx); err != nil {
		log.Fatal(err)
	}

	// One experiment: a saturating allocation workload under CMS.
	spec := labd.JobSpec{
		Kind:             labd.KindSimulate,
		Collector:        "CMS",
		HeapBytes:        8 << 30,
		Threads:          32,
		AllocBytesPerSec: 500e6,
		DurationSeconds:  120,
		Seed:             7,
	}

	// Cold run: the daemon schedules and executes the simulation.
	start := time.Now()
	cold, err := c.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run:  job %s  cache=%s  %d bytes  %v\n",
		cold.JobID, cold.Cache, len(cold.Bytes), time.Since(start).Round(time.Microsecond))

	// Same spec again: a cache hit, byte-identical to the cold run.
	start = time.Now()
	hit, err := c.Submit(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmit:  job %s  cache=%s  %d bytes  %v  byte-identical=%v\n\n",
		hit.JobID, hit.Cache, len(hit.Bytes), time.Since(start).Round(time.Microsecond),
		bytes.Equal(cold.Bytes, hit.Bytes))

	// The result decodes into the laboratory's native types.
	res, err := hit.Result()
	if err != nil {
		log.Fatal(err)
	}
	sim := res.Simulation
	fmt.Printf("%s on 8g heap: %d pauses (%d full GCs), worst %v, %v paused in total\n\n",
		spec.Collector, len(sim.Pauses), sim.FullGCs,
		sim.MaxPause.Round(time.Millisecond), sim.TotalPause.Round(time.Millisecond))

	// An advisory sweep through the same front door: which collector and
	// young size meet a 200 ms pause SLO on this heap?
	adv, err := c.Submit(ctx, labd.JobSpec{
		Kind:             labd.KindAdvise,
		HeapBytes:        8 << 30,
		Threads:          32,
		AllocBytesPerSec: 500e6,
		DurationSeconds:  60,
		MaxPauseMS:       200,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	advRes, err := adv.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(advRes.Text)

	// The daemon's own telemetry: job and cache counters plus scheduler
	// gauges, in Prometheus text format.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("metrics excerpt:")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "jvmgc_labd_") &&
			(strings.Contains(line, "cache") || strings.Contains(line, "simulations") ||
				strings.Contains(line, "submitted")) {
			fmt.Println("  " + line)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndaemon drained cleanly")
}
