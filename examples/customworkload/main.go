// customworkload: define your own workload demographics and study how
// each collector handles it — including the TLAB question from the
// paper's §3.4 (does the thread-local allocation fast path actually help
// this workload?).
//
// The workload here is a batch analytics job: very high allocation rate,
// almost everything short-lived, with a slowly growing result set.
//
// Run with:
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

func main() {
	base := jvmgc.SimulationConfig{
		HeapBytes:           32 << 30,
		Threads:             48,
		AllocBytesPerSec:    2.5e9, // 2.5 GB/s — allocation-bound analytics
		ShortLivedFraction:  0.965,
		ShortLifetime:       40 * time.Millisecond,
		MediumLivedFraction: 0.03,
		MediumLifetime:      2 * time.Second,
		Seed:                21,
	}
	const duration = 3 * time.Minute

	fmt.Println("collector    TLAB   pauses  totalPause  maxPause   note")
	for _, collector := range jvmgc.Collectors() {
		var withTLAB, withoutTLAB time.Duration
		for _, disable := range []bool{false, true} {
			cfg := base
			cfg.Collector = collector
			cfg.DisableTLAB = disable
			res, err := jvmgc.Simulate(cfg, duration)
			if err != nil {
				log.Fatal(err)
			}
			label := "on "
			if disable {
				label = "off"
			}
			fmt.Printf("%-12s %s    %-7d %-11v %-10v\n",
				collector, label, len(res.Pauses),
				res.TotalPause.Round(time.Millisecond),
				res.MaxPause.Round(time.Millisecond))
			if disable {
				withoutTLAB = res.TotalPause
			} else {
				withTLAB = res.TotalPause
			}
		}
		// At 2.5 GB/s the allocation path matters: compare GC load.
		diff := withoutTLAB - withTLAB
		fmt.Printf("%-12s        TLAB changes total pause by %v\n", collector, diff.Round(time.Millisecond))
	}
	fmt.Println("\nAt multi-GB/s allocation rates, disabling the TLAB taxes every")
	fmt.Println("allocation with a CAS — the mutator slows down, so the same amount")
	fmt.Println("of work takes longer wall time (see the paper's §3.4).")
}
