// clusterimpact: the paper's closing warning made concrete — "in a
// distributed system, even a lag of a few seconds might result in the
// current node being considered down and the initiation of a cumbersome
// synchronization protocol."
//
// Runs the saturated storage node under each collector and asks the
// cluster's question: how often would gossip peers have declared this
// node dead purely because of garbage collection?
//
// Run with:
//
//	go run ./examples/clusterimpact
package main

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

func main() {
	// Cassandra-like gossip: heartbeats every second, peers suspect the
	// node after ~8 s of silence.
	const suspicionTimeout = 8 * time.Second

	fmt.Printf("failure-detector timeout: %v\n\n", suspicionTimeout)
	for _, collector := range []string{"ParallelOld", "CMS", "G1", "HTM"} {
		res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
			Collector: collector,
			Stress:    true,
			Duration:  2 * time.Hour,
			Seed:      13,
		})
		if err != nil {
			log.Fatal(err)
		}
		suspicions := 0
		var down time.Duration
		var worst time.Duration
		for _, p := range res.ServerPauses {
			if p.Duration > worst {
				worst = p.Duration
			}
			if p.Duration > suspicionTimeout {
				suspicions++
				down += p.Duration - suspicionTimeout
			}
		}
		verdict := "node stays in the ring"
		if suspicions > 0 {
			verdict = fmt.Sprintf("peers declare it DOWN %d time(s), %v of false downtime",
				suspicions, down.Round(time.Second))
		}
		fmt.Printf("%-12s worst pause %-10v -> %s\n",
			collector, worst.Round(time.Millisecond), verdict)
	}
	fmt.Println("\nEvery suspicion costs the cluster hint accumulation, reconnects and")
	fmt.Println("read repair when the 'dead' node reappears — GC pauses become a")
	fmt.Println("cluster-wide event (paper §4.1, §6).")
}
