// workloads: run the YCSB core workloads (A–F) against the same simulated
// storage node and compare how each access pattern experiences the
// server's garbage collector.
//
// Scan-heavy workloads (E) pay more per operation but expose a smaller
// share of requests to pause shadows; read-only workloads (C) feel every
// pause as a spike.
//
// Run with:
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"
	"time"

	"jvmgc"
)

func main() {
	workloads := []struct {
		letter byte
		name   string
	}{
		{'A', "A update-heavy"},
		{'B', "B read-mostly"},
		{'C', "C read-only"},
		{'E', "E short-ranges"},
		{'F', "F read-modify-write"},
	}
	fmt.Println("workload              avg(ms)  max(ms)  normal-band")
	for _, w := range workloads {
		res, err := jvmgc.RunClientServer(jvmgc.ClientServerOptions{
			Collector: "CMS",
			Duration:  time.Hour,
			Workload:  w.letter,
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Workload F has no reads; report the dominant operation type.
		bands := res.Read
		if bands.N == 0 {
			bands = res.Update
		}
		fmt.Printf("%-20s  %-7.3f  %-7.1f  %.1f%%\n",
			w.name, bands.AvgMS, bands.MaxMS, bands.NormalReqsPct)
	}
}
